"""Tests for the core recognizers: Theorems 1/6 and the §7 algorithms.

Every recognizer is validated two ways: against the language's membership
predicate on sampled words, and (where a closed form exists) for the
*exact* bit cost the paper's construction promises.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import fixed_width_for
from repro.core.comparison import (
    CollectAllRecognizer,
    CopyRecognizer,
    MarkedPalindromeRecognizer,
    predicted_copy_bits,
)
from repro.core.counters import BlockCounterRecognizer, predicted_block_counter_bits
from repro.core.counting import (
    CountingAlgorithm,
    LengthPredicateRecognizer,
    predicted_counting_bits,
)
from repro.core.hierarchy import HierarchyRecognizer
from repro.core.known_n import KnownNHierarchyRecognizer, KnownNLengthRecognizer
from repro.core.passes_tradeoff import (
    OnePassTradeoffRecognizer,
    TwoPassTradeoffRecognizer,
    one_pass_bits,
    two_pass_bits,
)
from repro.core.regular_bidirectional import BidirectionalDFARecognizer
from repro.core.regular_onepass import DFARecognizer
from repro.errors import ProtocolError
from repro.languages import (
    AnBn,
    AnBnCn,
    CopyLanguage,
    MarkedPalindrome,
    PeriodicLanguage,
    STANDARD_GROWTHS,
)
from repro.languages.nonregular import is_prime
from repro.languages.regular import (
    mod_count_language,
    parity_language,
    substring_language,
    tradeoff_language,
)
from repro.ring import run_bidirectional, run_unidirectional
from repro.ring.schedulers import LifoScheduler, RandomScheduler

from conftest import all_words


class TestDFARecognizer:
    @pytest.mark.parametrize(
        "language",
        [parity_language(), mod_count_language("a", 3, 1), substring_language("abb")],
        ids=lambda l: l.name,
    )
    def test_exhaustive_agreement(self, language):
        algorithm = DFARecognizer(language.dfa, name=language.name)
        for word in all_words("ab", 7):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_exact_bits(self):
        language = mod_count_language("a", 3, 1)
        algorithm = DFARecognizer(language.dfa)
        width = fixed_width_for(len(algorithm.dfa.states))
        for n in [1, 2, 5, 17, 64]:
            trace = run_unidirectional(algorithm, "a" * n)
            assert trace.total_bits == width * n == algorithm.predicted_bits(n)

    def test_one_pass(self):
        algorithm = DFARecognizer(parity_language().dfa)
        trace = run_unidirectional(algorithm, "ababab")
        assert trace.pass_count() == 1
        assert trace.max_in_flight == 1

    def test_minimization_shrinks_width(self):
        """Non-minimal automata still work, minimal ones cost fewer bits."""
        from repro.automata.regex import regex_to_nfa

        big = regex_to_nfa("(a|b)*abb", "ab").determinize()
        fat = DFARecognizer(big, minimal=False)
        slim = DFARecognizer(big, minimal=True)
        word = "ababb"
        assert (
            run_unidirectional(fat, word).decision
            == run_unidirectional(slim, word).decision
        )
        assert slim.bits_per_message <= fat.bits_per_message

    def test_second_message_to_follower_rejected(self):
        algorithm = DFARecognizer(parity_language().dfa)
        processor = algorithm.create_processor("a", is_leader=False)
        message = algorithm.transducer.initial_message("a")
        from repro.ring.messages import Direction

        processor.on_receive(message, Direction.CCW)
        with pytest.raises(ProtocolError, match="second message"):
            processor.on_receive(message, Direction.CCW)


class TestBidirectionalDFARecognizer:
    def test_same_cost_any_scheduler(self):
        language = parity_language()
        algorithm = BidirectionalDFARecognizer(language.dfa)
        reference = run_unidirectional(DFARecognizer(language.dfa), "aabb")
        for scheduler in [None, LifoScheduler(), RandomScheduler(9)]:
            trace = run_bidirectional(algorithm, "aabb", scheduler=scheduler)
            assert trace.decision == reference.decision
            assert trace.total_bits == reference.total_bits


class TestCounting:
    def test_computes_n(self):
        for n in [1, 2, 3, 10, 100]:
            algorithm = CountingAlgorithm()
            run_unidirectional(algorithm, "a" * n)
            assert algorithm.last_leader.computed_n == n

    def test_exact_bits(self):
        for n in [1, 5, 33, 128]:
            algorithm = CountingAlgorithm()
            trace = run_unidirectional(algorithm, "a" * n)
            assert trace.total_bits == predicted_counting_bits(n)

    def test_all_information_states_distinct(self):
        algorithm = CountingAlgorithm()
        trace = run_unidirectional(algorithm, "ab" * 16)
        assert trace.distinct_information_states() == 32

    def test_length_predicate(self):
        algorithm = LengthPredicateRecognizer(is_prime, name="prime")
        for n in range(1, 40):
            trace = run_unidirectional(algorithm, "a" * n)
            assert trace.decision == is_prime(n), n


class TestBlockCounters:
    def test_anbncn_exhaustive(self):
        language = AnBnCn()
        algorithm = BlockCounterRecognizer("012")
        for word in all_words("012", 6):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_anbn(self):
        language = AnBn()
        algorithm = BlockCounterRecognizer("ab")
        for word in all_words("ab", 7):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_exact_bits_on_members(self):
        algorithm = BlockCounterRecognizer("012")
        for k in [1, 2, 5, 20]:
            word = "0" * k + "1" * k + "2" * k
            trace = run_unidirectional(algorithm, word)
            assert trace.total_bits == predicted_block_counter_bits(3 * k, 3)

    def test_rejects_bad_blocks(self):
        with pytest.raises(ProtocolError):
            BlockCounterRecognizer("aa")
        with pytest.raises(ProtocolError):
            BlockCounterRecognizer("")

    def test_out_of_order_letters(self):
        algorithm = BlockCounterRecognizer("012")
        assert run_unidirectional(algorithm, "021").decision is False
        assert run_unidirectional(algorithm, "102").decision is False

    def test_predicted_requires_divisible(self):
        with pytest.raises(ProtocolError):
            predicted_block_counter_bits(7, 3)


class TestComparison:
    def test_copy_exhaustive(self):
        language = CopyLanguage()
        algorithm = CopyRecognizer()
        for word in all_words("abc", 5):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_palindrome_exhaustive(self):
        language = MarkedPalindrome()
        algorithm = MarkedPalindromeRecognizer()
        for word in all_words("abc", 5):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_exact_bits(self, rng):
        language = CopyLanguage()
        algorithm = CopyRecognizer()
        for n in [1, 3, 7, 15, 31]:
            word = language.sample_member(n, rng)
            trace = run_unidirectional(algorithm, word)
            assert trace.total_bits == predicted_copy_bits(n)

    def test_predicted_rejects_even(self):
        with pytest.raises(ProtocolError):
            predicted_copy_bits(4)

    def test_single_marker_word(self):
        assert run_unidirectional(CopyRecognizer(), "c").decision is True
        assert run_unidirectional(MarkedPalindromeRecognizer(), "c").decision is True

    def test_collect_all_is_an_oracle(self, rng):
        language = CopyLanguage()
        algorithm = CollectAllRecognizer(language)
        for n in [1, 4, 9, 12]:
            for word in [
                language.sample_member(n, rng),
                language.sample_non_member(n, rng),
            ]:
                if word is None:
                    continue
                trace = run_unidirectional(algorithm, word)
                assert trace.decision == language.contains(word)
                assert trace.total_bits == algorithm.predicted_bits(n)

    def test_collect_all_decodes_word(self):
        language = CopyLanguage()
        algorithm = CollectAllRecognizer(language)
        encoded = algorithm.encode_letter("a") + algorithm.encode_letter("c")
        assert algorithm.decode_word(encoded) == "ac"

    def test_collect_all_ragged_message(self):
        algorithm = CollectAllRecognizer(CopyLanguage())
        from repro.bits import Bits

        with pytest.raises(ProtocolError, match="ragged"):
            algorithm.decode_word(Bits("101"))


class TestHierarchyRecognizer:
    @pytest.mark.parametrize("growth", STANDARD_GROWTHS, ids=lambda g: g.name)
    def test_agreement_with_language(self, growth, rng):
        language = PeriodicLanguage(growth)
        algorithm = HierarchyRecognizer(language)
        for n in range(2, 40):
            for word in [
                language.sample_member(n, rng),
                language.sample_non_member(n, rng),
            ]:
                if word is None:
                    continue
                trace = run_unidirectional(algorithm, word)
                assert trace.decision == language.contains(word), (growth.name, word)

    def test_two_passes(self, rng):
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        algorithm = HierarchyRecognizer(language)
        word = language.sample_member(16, rng)
        trace = run_unidirectional(algorithm, word)
        assert trace.pass_count() == 2
        assert trace.message_count == 32

    def test_leader_learns_n(self, rng):
        language = PeriodicLanguage(STANDARD_GROWTHS[1])
        algorithm = HierarchyRecognizer(language)
        ring_word = language.sample_member(25, rng)
        from repro.ring.unidirectional import UnidirectionalRing

        ring = UnidirectionalRing(algorithm, ring_word)
        ring.run()
        assert ring.processors[0].computed_n == 25

    def test_size_one_ring(self):
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        algorithm = HierarchyRecognizer(language)
        trace = run_unidirectional(algorithm, "a")
        # g(1) = 1 => p = 1: the single-letter word is trivially periodic.
        assert trace.decision is language.contains("a") is True

    def test_size_one_ring_degenerate_growth(self):
        from repro.languages.hierarchy import GrowthFunction

        zero = GrowthFunction("zero", lambda n: 0.0)
        language = PeriodicLanguage(zero)
        algorithm = HierarchyRecognizer(language)
        trace = run_unidirectional(algorithm, "ab")
        # p = 0: no word of this length is a member; leader rejects.
        assert trace.decision is language.contains("ab") is False


class TestKnownN:
    @pytest.mark.parametrize("growth", STANDARD_GROWTHS, ids=lambda g: g.name)
    def test_agreement(self, growth, rng):
        language = PeriodicLanguage(growth)
        algorithm = KnownNHierarchyRecognizer(language)
        for n in range(2, 30):
            for word in [
                language.sample_member(n, rng),
                language.sample_non_member(n, rng),
            ]:
                if word is None:
                    continue
                trace = run_unidirectional(algorithm, word)
                assert trace.decision == language.contains(word), (growth.name, word)

    def test_positioned_factory_required(self):
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        algorithm = KnownNHierarchyRecognizer(language)
        with pytest.raises(ProtocolError, match="positional knowledge"):
            algorithm.create_processor("a", is_leader=True)

    def test_single_pass_vs_two(self, rng):
        """Known n saves the counting pass entirely."""
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        known = KnownNHierarchyRecognizer(language)
        unknown = HierarchyRecognizer(language)
        word = language.sample_member(24, rng)
        known_trace = run_unidirectional(known, word)
        unknown_trace = run_unidirectional(unknown, word)
        assert known_trace.pass_count() == 1
        assert unknown_trace.pass_count() == 2
        assert known_trace.total_bits < unknown_trace.total_bits

    def test_prime_length_exact_n_bits(self):
        algorithm = KnownNLengthRecognizer(is_prime)
        for n in range(1, 30):
            trace = run_unidirectional(algorithm, "a" * n)
            assert trace.decision == is_prime(n)
            assert trace.total_bits == n
            assert trace.message_count == n

    def test_known_n_length_positioned_only(self):
        algorithm = KnownNLengthRecognizer(is_prime)
        with pytest.raises(ProtocolError):
            algorithm.create_processor("a", is_leader=True)


class TestPassesTradeoff:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_both_recognize_the_language(self, k, rng):
        language = tradeoff_language(k)
        one = OnePassTradeoffRecognizer(language)
        two = TwoPassTradeoffRecognizer(language)
        for n in range(1, 18):
            for word in [
                language.sample_member(n, rng),
                language.sample_non_member(n, rng),
            ]:
                if word is None:
                    continue
                expected = language.contains(word)
                assert run_unidirectional(one, word).decision == expected
                assert run_unidirectional(two, word).decision == expected

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_exact_formulas(self, k, rng):
        language = tradeoff_language(k)
        one = OnePassTradeoffRecognizer(language)
        two = TwoPassTradeoffRecognizer(language)
        for n in [4, 9, 32]:
            word = language.sample_member(n, rng)
            assert run_unidirectional(one, word).total_bits == one_pass_bits(k, n)
            assert run_unidirectional(two, word).total_bits == two_pass_bits(k, n)

    def test_crossover_at_k3(self):
        """One pass wins at k=1, ties at k=2, loses from k=3 on."""
        assert one_pass_bits(1, 100) < two_pass_bits(1, 100)
        assert one_pass_bits(2, 100) == two_pass_bits(2, 100)
        assert one_pass_bits(3, 100) > two_pass_bits(3, 100)
        assert one_pass_bits(5, 100) > two_pass_bits(5, 100) * 3

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_formula_shapes(self, k, n):
        assert two_pass_bits(k, n) == (2 * k + 1) * n
        assert one_pass_bits(k, n) == (k + (1 << k) - 1) * n


class TestCountingCodecAblation:
    def test_unary_counting_correct_but_quadratic(self):
        from repro.core.counting import (
            UnaryCountingAlgorithm,
            predicted_counting_bits,
            predicted_unary_counting_bits,
        )

        for n in [1, 7, 40]:
            algorithm = UnaryCountingAlgorithm()
            trace = run_unidirectional(algorithm, "a" * n)
            assert algorithm.last_leader.computed_n == n
            assert trace.total_bits == predicted_unary_counting_bits(n)
        # Quadratic beats n log n from small n on.
        assert predicted_unary_counting_bits(64) > 3 * predicted_counting_bits(64)


class TestDyckRecognizer:
    def test_exhaustive(self):
        from repro.core import DyckRecognizer
        from repro.languages import DyckLanguage

        language, algorithm = DyckLanguage(), DyckRecognizer()
        for word in all_words("()", 8):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == language.contains(word), word

    def test_samplers(self, rng):
        from repro.languages import DyckLanguage

        language = DyckLanguage()
        for n in range(2, 30, 2):
            member = language.sample_member(n, rng)
            assert member is not None and language.contains(member)
            assert len(member) == n
            non_member = language.sample_non_member(n, rng)
            assert non_member is not None and not language.contains(non_member)
        assert language.sample_member(3, rng) is None

    def test_nlogn_class(self, rng):
        """The CF companion to E8: Dyck also sits on the n log n shelf."""
        from repro.analysis.growth import classify_growth
        from repro.core import DyckRecognizer
        from repro.languages import DyckLanguage

        language, algorithm = DyckLanguage(), DyckRecognizer()
        ns, bits = [], []
        for n in (16, 32, 64, 128, 256):
            # Worst case: maximal height (all opens then all closes).
            word = "(" * (n // 2) + ")" * (n // 2)
            trace = run_unidirectional(algorithm, word)
            assert trace.decision is True
            ns.append(n)
            bits.append(trace.total_bits)
        assert classify_growth(ns, bits).model.name == "n*log(n)"

    def test_underflow_rejected_early(self):
        from repro.core import DyckRecognizer

        trace = run_unidirectional(DyckRecognizer(), ")(")
        assert trace.decision is False
