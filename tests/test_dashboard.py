"""Dashboard subsystem tests: determinism, exports, and store tolerance.

The contracts under test are the dashboard's advertisements: rendering
is a pure function of the store (two builds from the same store are
byte-identical), an empty store renders valid "no data" pages and exits
0, ``campaign.json`` round-trips every fitted curve ``report --all
--refit`` prints, and the presentation layer never simulates.  The
store-tolerance satellites ride along: a truncated record warns and
re-measures instead of crashing a resumed campaign, the campaign
``--resume`` skip-set comes from one store walk, and ``--prune-stale
--dry-run`` deletes nothing while sizing what a real prune would
reclaim.
"""

from __future__ import annotations

import json
from html.parser import HTMLParser
from xml.etree import ElementTree

import pytest

from repro.analysis.growth import classify_growth, refit_from_store
from repro.analysis.tables import format_table, render_rows, rows_to_csv
from repro.cli import main
from repro.dashboard import build_dashboard
from repro.dashboard.assemble import assemble, lpt_schedule
from repro.experiments import ALL_SPECS, RunProfile, get_spec
from repro.runner import RunStore, execute_campaign, execute_plan

QUICK = RunProfile(preset="quick")

PAGE_COUNT = len(ALL_SPECS)  # one page per experiment


def _populate(store: RunStore, exp_ids=("E8",), profile=QUICK) -> None:
    execute_campaign([get_spec(e) for e in exp_ids], profile, store=store)


def _read_all(out_dir) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(out_dir.iterdir())
        if path.is_file()
    }


class _WellFormed(HTMLParser):
    VOID = {"meta", "link", "br", "img", "hr", "input"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack, self.errors = [], []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if self.stack and self.stack[-1] == tag:
            self.stack.pop()
        else:
            self.errors.append(tag)


def _assert_valid_html(text: str) -> None:
    checker = _WellFormed()
    checker.feed(text)
    assert not checker.errors and not checker.stack


class TestDashboardDeterminism:
    def test_two_builds_from_same_store_are_byte_identical(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8", "E11"))
        build_dashboard(store, QUICK, tmp_path / "a", timeline_jobs=2)
        build_dashboard(store, QUICK, tmp_path / "b", timeline_jobs=2)
        first, second = _read_all(tmp_path / "a"), _read_all(tmp_path / "b")
        assert list(first) == list(second)
        for name in first:
            assert first[name] == second[name], name

    def test_empty_store_renders_no_data_pages_exit_0(self, tmp_path, capsys):
        out = tmp_path / "site"
        code = main(
            [
                "dashboard",
                "--store",
                str(tmp_path / "empty-runs"),
                "--out",
                str(out),
                "--bench-dir",
                str(tmp_path / "no-bench"),
            ]
        )
        assert code == 0
        pages = sorted(p.name for p in out.glob("E*.html"))
        assert len(pages) == PAGE_COUNT
        index = (out / "index.html").read_text(encoding="utf-8")
        _assert_valid_html(index)
        assert "no records" in index
        for page in pages:
            text = (out / page).read_text(encoding="utf-8")
            _assert_valid_html(text)
            assert "no stored record" in text
        payload = json.loads((out / "campaign.json").read_text())
        assert payload["totals"]["stored_cells"] == 0
        assert not list(out.glob("*.cells.csv"))

    def test_pages_are_wellformed_with_valid_svg(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        written = build_dashboard(store, QUICK, tmp_path / "site")
        e8 = (tmp_path / "site" / "E8.html").read_text(encoding="utf-8")
        _assert_valid_html(e8)
        assert "<svg" in e8  # growth curves + wall-clock bars
        for path in written:
            if path.suffix == ".html":
                text = path.read_text(encoding="utf-8")
                start = 0
                while (start := text.find("<svg", start)) != -1:
                    end = text.index("</svg>", start) + len("</svg>")
                    ElementTree.fromstring(text[start:end])
                    start = end

    def test_rerender_drops_orphans_keeps_unrelated_files(self, tmp_path):
        """In-place re-render reflects the store; foreign files survive."""
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        out = tmp_path / "site"
        build_dashboard(store, QUICK, out)
        assert (out / "E8.cells.csv").is_file()
        foreign = out / "notes.txt"
        foreign.write_text("mine", encoding="utf-8")
        build_dashboard(RunStore(tmp_path / "empty"), QUICK, out)
        assert not (out / "E8.cells.csv").exists()
        assert foreign.read_text(encoding="utf-8") == "mine"

    def test_render_never_simulates(self, tmp_path, monkeypatch):
        """Every cell fn is poisoned; a complete store must still build."""
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))

        def boom(cell):
            raise AssertionError("dashboard ran a measurement")

        monkeypatch.setattr("repro.experiments.base.run_cell", boom)
        monkeypatch.setattr("repro.runner.executor.run_cell", boom)
        written = build_dashboard(store, QUICK, tmp_path / "site")
        assert any(path.name == "E8.html" for path in written)


class TestDashboardExports:
    def test_campaign_json_round_trips_refit_fits(self, tmp_path):
        """The export reproduces every fit report --all --refit prints."""
        curve_experiments = [
            exp_id
            for exp_id, spec in ALL_SPECS.items()
            if spec.curves is not None
        ]
        store = RunStore(tmp_path / "runs")
        _populate(store, curve_experiments)
        build_dashboard(store, QUICK, tmp_path / "site")
        payload = json.loads(
            (tmp_path / "site" / "campaign.json").read_text()
        )
        for exp_id in curve_experiments:
            fits = payload["experiments"][exp_id]["fits"]
            refits = refit_from_store(store.root, exp_id, QUICK)
            assert set(fits) == set(refits), exp_id
            for name, exported in fits.items():
                # the rendered string is the exact --refit line payload
                assert exported["rendered"] == str(refits[name])
                # and the series round-trips: re-classifying the
                # exported (ns, bits) reproduces the fit verbatim
                refit = classify_growth(exported["ns"], exported["bits"])
                assert str(refit) == exported["rendered"]
                assert refit.model.name == exported["model"]
                assert refit.constant == exported["constant"]

    def test_campaign_json_cell_provenance(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        build_dashboard(store, QUICK, tmp_path / "site")
        payload = json.loads(
            (tmp_path / "site" / "campaign.json").read_text()
        )
        cells = payload["experiments"]["E8"]["cells"]
        plan = get_spec("E8").cells(QUICK)
        assert [c["key"] for c in cells] == [cell.key for cell in plan]
        for exported, cell in zip(cells, plan):
            assert exported["config_hash"] == cell.config_hash()
            assert (store.root / exported["path"]).is_file()

    def test_cells_csv_one_row_per_stored_cell(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        build_dashboard(store, QUICK, tmp_path / "site")
        lines = (
            (tmp_path / "site" / "E8.cells.csv")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        plan = get_spec("E8").cells(QUICK)
        assert lines[0].startswith("exp_id,preset,key,mode,config_hash")
        assert len(lines) == 1 + len(plan)
        assert all(line.startswith("E8,quick,") for line in lines[1:])

    def test_bench_trajectory_folds_bench_files(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "BENCH_2026-01-01.json").write_text(
            json.dumps({"date": "2026-01-01", "x": 1})
        )
        (bench / "BENCH_2026-02-01.json").write_text(
            json.dumps({"date": "2026-02-01", "x": 2})
        )
        (bench / "not-a-bench.json").write_text("{}")
        store = RunStore(tmp_path / "runs")
        build_dashboard(store, QUICK, tmp_path / "site", bench_dir=bench)
        payload = json.loads(
            (tmp_path / "site" / "bench-trajectory.json").read_text()
        )
        assert [e["file"] for e in payload["benchmarks"]] == [
            "BENCH_2026-01-01.json",
            "BENCH_2026-02-01.json",
        ]
        assert [e["data"]["x"] for e in payload["benchmarks"]] == [1, 2]

    def test_page_embeds_provenance_title_and_stale_warning(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = get_spec("E8")
        _populate(store, ("E8",))
        cell = spec.cells(QUICK)[0]
        live = store.path_for(cell, QUICK)
        stale = live.with_name(f"{live.name.split('__')[0]}__{'0' * 12}.json")
        stale.write_text("{}", encoding="utf-8")
        build_dashboard(store, QUICK, tmp_path / "site")
        text = (tmp_path / "site" / "E8.html").read_text(encoding="utf-8")
        assert spec.title in text
        assert cell.config_hash() in text
        assert "stale store file" in text


class TestDashboardCLI:
    def test_dashboard_rejects_ids_and_report_flags(self, capsys):
        for argv in (
            ["dashboard", "E8"],
            ["dashboard", "--refit"],
            ["dashboard", "--prune-stale"],
            ["dashboard", "--resume"],
            ["dashboard", "--no-store"],
            ["dashboard", "--profile"],
            ["E8", "--open", "--no-store"],
            ["E8", "--out", "site", "--no-store"],
            ["report", "E8", "--bench-dir", "benchmarks"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_dashboard_honors_preset_and_prints_summary(
        self, tmp_path, capsys
    ):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        out = tmp_path / "site"
        code = main(
            [
                "dashboard",
                "--preset",
                "quick",
                "--store",
                str(store.root),
                "--out",
                str(out),
                "--bench-dir",
                str(tmp_path / "none"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "no simulation" in captured.out
        payload = json.loads((out / "campaign.json").read_text())
        assert payload["preset"] == "quick"
        assert payload["experiments"]["E8"]["complete"] is True
        assert payload["experiments"]["E1"]["complete"] is False


class TestFleetProvenance:
    """The derived per-cell shard column (``--fleet N``): computed from
    cell identity at render time, never recorded — which is what keeps a
    merged fleet store's exports byte-identical to an unsharded one."""

    def test_default_fleet_is_single_machine(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8",))
        build_dashboard(store, QUICK, tmp_path / "site")
        payload = json.loads(
            (tmp_path / "site" / "campaign.json").read_text()
        )
        assert payload["fleet"] == 1
        for cell in payload["experiments"]["E8"]["cells"]:
            assert cell["shard"] == "1/1"

    def test_shard_column_matches_the_partition(self, tmp_path):
        from repro.runner import shard_index

        store = RunStore(tmp_path / "runs")
        _populate(store, ("E8", "E9"))
        code = main(
            [
                "dashboard",
                "--quick",
                "--store",
                str(store.root),
                "--out",
                str(tmp_path / "site"),
                "--fleet",
                "3",
            ]
        )
        assert code == 0
        payload = json.loads(
            (tmp_path / "site" / "campaign.json").read_text()
        )
        assert payload["fleet"] == 3
        for exp_id in ("E8", "E9"):
            for cell in payload["experiments"][exp_id]["cells"]:
                expected = shard_index(exp_id, cell["key"], 3) + 1
                assert cell["shard"] == f"{expected}/3"
        csv_head = (
            (tmp_path / "site" / "E8.cells.csv")
            .read_text()
            .splitlines()[0]
        )
        assert "shard" in csv_head.split(",")
        html = (tmp_path / "site" / "E8.html").read_text()
        assert "<th>shard</th>" in html

    def test_fleet_flag_validation(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E8", "--quick", "--fleet", "3", "--no-store"])
        assert excinfo.value.code == 2
        assert "--fleet" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "dashboard",
                    "--fleet",
                    "0",
                    "--store",
                    str(tmp_path / "runs"),
                ]
            )
        assert excinfo.value.code == 2
        assert "positive fleet size" in capsys.readouterr().err


class TestSpecTitles:
    def test_every_spec_declares_its_title(self):
        for exp_id, spec in ALL_SPECS.items():
            assert spec.title, exp_id
            result = spec.run(QUICK) if exp_id == "E11" else None
            if result is not None:
                assert result.title == spec.title


class TestStructuredTables:
    def test_render_rows_backs_format_table(self):
        rows = [{"a": 1, "b": 2.5, "c": True}, {"a": 10, "c": False}]
        cols, rendered = render_rows(rows, ["a", "b", "c"])
        assert cols == ["a", "b", "c"]
        assert rendered == [["1", "2.500", "yes"], ["10", "", "no"]]
        text = format_table(rows, ["a", "b", "c"])
        for line in rendered:
            for cell in line:
                if cell:
                    assert cell in text

    def test_rows_to_csv_quotes_and_orders(self):
        rows = [{"k": 'x,"y"', "v": 1.25}]
        assert (
            rows_to_csv(rows, ["k", "v"])
            == 'k,v\n"x,""y""",1.250\n'
        )


class TestStoreTolerance:
    def test_truncated_record_warns_and_reads_as_missing(self, tmp_path):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        cell = spec.cells(QUICK)[0]
        path = store.path_for(cell, QUICK)
        path.write_text(path.read_text()[: 40], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.load(cell, QUICK) is None

    def test_resumed_campaign_remeasures_truncated_cell(self, tmp_path):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        fresh = execute_plan(spec, QUICK, store=store)
        cell = spec.cells(QUICK)[0]
        path = store.path_for(cell, QUICK)
        path.write_text(path.read_text()[: 40], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            resumed = execute_plan(spec, QUICK, store=store, resume=True)
        assert resumed.result.render() == fresh.result.render()
        assert resumed.cached_count == len(resumed.outcomes) - 1
        # the re-measured record was persisted back
        assert store.load(cell, QUICK) is not None

    def test_campaign_skip_set_built_from_one_store_walk(self, tmp_path):
        walks = 0

        class CountingStore(RunStore):
            def existing_files(self):
                nonlocal walks
                walks += 1
                return super().existing_files()

        store = CountingStore(tmp_path)
        _populate(store, ("E8", "E11"))
        walks = 0
        campaign = execute_campaign(
            [get_spec("E8"), get_spec("E11")], QUICK, store=store, resume=True
        )
        assert walks == 1
        assert campaign.cached_count == campaign.cell_count

    def test_load_campaign_skips_absent_without_probing(self, tmp_path):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        cells = spec.cells(QUICK)
        execute_plan(spec, QUICK, store=store)
        plans = {"E8": cells, "E11": get_spec("E11").cells(QUICK)}
        skip = store.load_campaign(plans, QUICK)
        assert sorted(skip) == ["E11", "E8"]
        assert sorted(skip["E8"]) == sorted(cell.key for cell in cells)
        assert skip["E11"] == {}


class TestPruneDryRun:
    def _plant_stale(self, store, spec):
        cell = spec.cells(QUICK)[0]
        live = store.path_for(cell, QUICK)
        stale = live.with_name(
            f"{live.name.split('__')[0]}__{'0' * 12}.json"
        )
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text(json.dumps({"record": {}}), encoding="utf-8")
        return stale

    def test_dry_run_lists_bytes_and_deletes_nothing(
        self, tmp_path, capsys
    ):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        stale = self._plant_stale(store, spec)
        code = main(
            [
                "report",
                "E8",
                "--quick",
                "--store",
                str(tmp_path),
                "--prune-stale",
                "--dry-run",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"would reclaim {stale.stat().st_size} bytes" in err
        assert "nothing deleted" in err
        assert stale.is_file()

    def test_real_prune_reports_reclaimed_bytes(self, tmp_path, capsys):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        stale = self._plant_stale(store, spec)
        size = stale.stat().st_size
        code = main(
            [
                "report",
                "E8",
                "--quick",
                "--store",
                str(tmp_path),
                "--prune-stale",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"reclaimed {size} bytes" in err
        assert not stale.exists()

    def test_prune_never_touches_sizes_override_records(
        self, tmp_path, capsys
    ):
        """--sizes records share the preset dir but are never stale."""
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        override = RunProfile(preset="quick", sizes=(9, 18, 27))
        execute_plan(spec, override, store=store)
        override_paths = [
            store.path_for(cell, override) for cell in spec.cells(override)
        ]
        for prune_args in (["--prune-stale", "--dry-run"], ["--prune-stale"]):
            code = main(
                ["report", "E8", "--quick", "--store", str(tmp_path)]
                + prune_args
            )
            assert code == 0
        assert all(path.is_file() for path in override_paths)
        # and pruning over the override plan leaves the default records
        # alone, symmetrically (exit code reflects the claim check at
        # these tiny sizes, not the hygiene pass under test)
        main(
            [
                "report",
                "E8",
                "--quick",
                "--sizes",
                "9,18,27",
                "--store",
                str(tmp_path),
                "--prune-stale",
            ]
        )
        assert all(
            store.path_for(cell, QUICK).is_file()
            for cell in spec.cells(QUICK)
        )


class TestAssembleAndTimeline:
    def test_assemble_marks_partial_experiments(self, tmp_path):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        # drop one record -> partial
        store.path_for(spec.cells(QUICK)[0], QUICK).unlink()
        view = assemble(store, QUICK, specs=[spec])
        (e8,) = view.experiments
        assert not e8.complete
        assert e8.status == "partial"
        assert len(e8.missing) == 1
        assert e8.result is None

    def test_lpt_schedule_is_deterministic_and_complete(self, tmp_path):
        store = RunStore(tmp_path)
        _populate(store, ("E8", "E11"))
        view = assemble(store, QUICK)
        lanes_a, makespan_a = lpt_schedule(view, 3)
        lanes_b, makespan_b = lpt_schedule(view, 3)
        assert makespan_a == makespan_b > 0
        assert [
            [(cell.key, start) for _exp, cell, start in lane]
            for lane in lanes_a
        ] == [
            [(cell.key, start) for _exp, cell, start in lane]
            for lane in lanes_b
        ]
        scheduled = sum(len(lane) for lane in lanes_a)
        assert scheduled == view.stored_cells
        # heaviest-first: the longest stored cell starts at t=0
        heaviest = max(
            (cell.seconds for exp in view.experiments for cell in exp.cells),
        )
        starts_at_zero = {
            cell.seconds
            for lane in lanes_a
            for _exp, cell, start in lane
            if start == 0.0
        }
        assert heaviest in starts_at_zero
