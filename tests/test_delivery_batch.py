"""Round-batched delivery engine: oracle equivalence and engagement rules.

The batch engine (:func:`repro.ring.delivery.run_round_batched`) replaces
the heap loop whenever the scheduler is ``round_batchable`` and the run
streams ``trace="metrics"``.  Its contract is *bit-for-bit equivalence*
with the heap oracle: identical delivery order (pinned here through a
shared journal every processor appends to), identical
:class:`~repro.ring.trace.TraceStats` counters, and identical experiment
tables — across the asynchronous substrates (bidirectional ring, line)
and the unidirectional ring (``uni=True``, whose own global-FIFO deque
loop is the oracle), with randomized protocols.
The poisoned-oracle tests prove the engagement rule from both sides: an
engaged batch run never constructs :class:`LinkQueues` at all, and
``REPRO_NO_ROUND_BATCH=1`` (the ``delivery-parity`` CI job's diff lever)
forces the heap back.

The incremental sorted view (the non-``head_only`` candidate list) is
covered by a push/pop state-machine property against a from-scratch
re-sort.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import Bits
from repro.errors import ProtocolError
from repro.experiments import get_experiment
from repro.ring.bidirectional import BidirectionalRing, run_bidirectional
from repro.ring.delivery import LinkQueues, round_batching_enabled
from repro.ring.line import LineNetwork
from repro.ring.messages import Direction, Send
from repro.ring.processor import Processor, RingAlgorithm
from repro.ring.unidirectional import run_unidirectional
from repro.ring.schedulers import (
    AdversarialScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
    Scheduler,
)

STAT_FIELDS = (
    "total_bits",
    "message_count",
    "link_bits",
    "sent_counts",
    "pass_bits",
    "max_in_flight",
    "decision",
)


class _HeapFifo(FifoScheduler):
    """Global-FIFO order, batch engine declined: the heap oracle."""

    round_batchable = False


def _assert_stats_equal(left, right) -> None:
    for field in STAT_FIELDS:
        assert getattr(left, field) == getattr(right, field), field


@contextmanager
def _batching_disabled():
    """Force the oracle loop, hypothesis-safe (no function-scoped fixture)."""
    os.environ["REPRO_NO_ROUND_BATCH"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_NO_ROUND_BATCH", None)


# ---------------------------------------------------------------------------
# A randomized protocol whose executions are deterministic per seed:
# every processor draws from its own RNG, and since both engines deliver
# in the same global order, the k-th on_receive of a given processor
# sees the same message in both — so the RNG streams align and the two
# executions are the same execution.  Message TTL is its bit length and
# children are strictly shorter, so every execution quiesces.
# ---------------------------------------------------------------------------


class _ChaosProcessor(Processor):
    def __init__(
        self, letter, is_leader, index, size, seed, line, journal,
        uni=False,
    ):
        super().__init__(letter, is_leader)
        self._rng = random.Random(seed * 1_000_003 + index)
        self._index = index
        self._size = size
        self._line = line
        self._uni = uni
        self._journal = journal

    def _sends(self, budget: int):
        rng = self._rng
        out = []
        # Branchy but bounded: children are strictly shorter than their
        # parent, so depth <= the on_start budget and every run quiesces.
        children = rng.choice((0, 1, 1, 1, 2, 2))
        for _ in range(children):
            if budget <= 1:
                break
            ttl = rng.randrange(max(1, budget - 3), budget)
            payload = Bits(
                "".join(rng.choice("01") for _ in range(ttl))
            )
            choices = []
            if not self._line or self._index < self._size - 1:
                choices.append(Direction.CW)
            if not self._uni and (not self._line or self._index > 0):
                choices.append(Direction.CCW)
            if not choices:
                break
            out.append(Send(rng.choice(choices), payload))
        return out

    def on_start(self):
        self.decide(True)
        return self._sends(12)

    def on_receive(self, bits, arrived_from):
        self._journal.append((self._index, len(bits), arrived_from))
        return self._sends(len(bits))


class _ChaosAlgorithm(RingAlgorithm):
    name = "chaos"

    def __init__(
        self, seed: int, line: bool = False, uni: bool = False
    ) -> None:
        super().__init__("ab")
        self._seed = seed
        self._line = line
        self._uni = uni
        self.journal: "list[tuple[int, int, Direction]]" = []

    def create_processor(self, letter, is_leader):
        raise AssertionError("positioned only")

    def create_processor_positioned(self, letter, is_leader, index, size):
        return _ChaosProcessor(
            letter, is_leader, index, size, self._seed, self._line,
            self.journal, uni=self._uni,
        )


def _run_chaos_bidi(seed: int, n: int, scheduler: Scheduler, trace: str):
    algorithm = _ChaosAlgorithm(seed)
    result = run_bidirectional(
        algorithm, "a" * n, scheduler=scheduler, trace=trace
    )
    return result, algorithm.journal


def _run_chaos_line(seed: int, n: int, scheduler: Scheduler, trace: str):
    algorithm = _ChaosAlgorithm(seed, line=True)
    leader = seed % n
    result = LineNetwork(
        algorithm, "a" * n, leader=leader, scheduler=scheduler
    ).run(trace=trace)
    return result, algorithm.journal


def _run_chaos_uni(seed: int, n: int, trace: str):
    algorithm = _ChaosAlgorithm(seed, uni=True)
    result = run_unidirectional(algorithm, "a" * n, trace=trace)
    return result, algorithm.journal


class TestOracleEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_bidi_batch_equals_heap_and_full(self, seed, n):
        batch, batch_journal = _run_chaos_bidi(
            seed, n, FifoScheduler(), "metrics"
        )
        heap, heap_journal = _run_chaos_bidi(seed, n, _HeapFifo(), "metrics")
        full, full_journal = _run_chaos_bidi(seed, n, FifoScheduler(), "full")
        # Identical delivery order, message for message...
        assert batch_journal == heap_journal == full_journal
        # ...and identical accounting, field for field.
        _assert_stats_equal(batch, heap)
        _assert_stats_equal(batch, full.stats())

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_line_batch_equals_heap_and_full(self, seed, n):
        batch, batch_journal = _run_chaos_line(
            seed, n, FifoScheduler(), "metrics"
        )
        heap, heap_journal = _run_chaos_line(seed, n, _HeapFifo(), "metrics")
        full, full_journal = _run_chaos_line(seed, n, FifoScheduler(), "full")
        assert batch_journal == heap_journal == full_journal
        _assert_stats_equal(batch, heap)
        _assert_stats_equal(batch, full.stats())

    def test_experiment_table_identical(self, monkeypatch):
        """A whole experiment renders byte-identically on both engines.

        E6 drives the line substrate (the ring-to-line compiler) whose
        quick cells stream metrics — the same lever the CI
        ``delivery-parity`` job pulls on whole quick campaigns.
        """
        batched = get_experiment("E6")(True).render()
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        heap = get_experiment("E6")(True).render()
        assert batched == heap


class TestUnidirectionalBatch:
    """The uni substrate on the engine: the global FIFO deque is the oracle.

    The unidirectional simulator has no scheduler or ``LinkQueues`` —
    its deque loop *is* global FIFO — so parity pins the engine against
    that loop (``REPRO_NO_ROUND_BATCH=1``) instead of a heap, plus the
    full-trace accounting which always takes the deque path.
    """

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_uni_batch_equals_deque_and_full(self, seed, n):
        batch, batch_journal = _run_chaos_uni(seed, n, "metrics")
        with _batching_disabled():
            deque_stats, deque_journal = _run_chaos_uni(seed, n, "metrics")
        full, full_journal = _run_chaos_uni(seed, n, "full")
        # Identical delivery order, message for message...
        assert batch_journal == deque_journal == full_journal
        # ...and identical accounting, field for field.
        _assert_stats_equal(batch, deque_stats)
        _assert_stats_equal(batch, full.stats())

    def test_uni_ccw_error_identical(self, monkeypatch):
        """The engine's CCW rejection matches the deque loop's, word for
        word (the unidirectional model violation, not the line's)."""

        class _Rebel(Processor):
            def on_start(self):
                self.decide(True)
                return [Send.cw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return [Send.ccw(bits)]

        class _RebelAlgo(RingAlgorithm):
            name = "rebel"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Rebel(letter, is_leader)

        def message():
            with pytest.raises(ProtocolError) as info:
                run_unidirectional(_RebelAlgo(), "aaa", trace="metrics")
            return str(info.value)

        batched = message()
        assert "unidirectional algorithms may only send CW" in batched
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        assert batched == message()

    def test_uni_cap_errors_identical(self, monkeypatch):
        """The round-hoisted cap raises exactly like the deque loop's."""

        class _Forever(Processor):
            def on_start(self):
                self.decide(True)
                return [Send.cw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return [Send.cw(bits)]

        class _ForeverAlgo(RingAlgorithm):
            name = "forever"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Forever(letter, is_leader)

        def message():
            from repro.errors import RingError

            with pytest.raises(RingError) as info:
                run_unidirectional(
                    _ForeverAlgo(), "aaaa", max_messages=10, trace="metrics"
                )
            return str(info.value)

        batched = message()
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        assert batched == message()
        monkeypatch.delenv("REPRO_NO_ROUND_BATCH")

        # Quiescing at exactly the cap raises on neither path.
        class _Once(Processor):
            def on_start(self):
                self.decide(True)
                return [Send.cw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return ()

        class _OnceAlgo(RingAlgorithm):
            name = "once"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Once(letter, is_leader)

        stats = run_unidirectional(
            _OnceAlgo(), "aa", max_messages=1, trace="metrics"
        )
        assert stats.message_count == 1

    def test_uni_batch_path_never_builds_the_deque(self, monkeypatch):
        """Poisoned deque: an engaged metrics run returns before the
        oracle loop's pending queue is ever constructed."""
        import repro.ring.unidirectional as module

        class _Poisoned:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "round-batched run built the oracle deque"
                )

        monkeypatch.setattr(module, "deque", _Poisoned)
        stats, _ = _run_chaos_uni(7, 9, "metrics")
        assert stats.decision is True
        # Full traces still need the deque loop...
        with pytest.raises(AssertionError, match="built the oracle"):
            _run_chaos_uni(7, 9, "full")
        # ...and the kill switch forces metrics back onto it too.
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        with pytest.raises(AssertionError, match="built the oracle"):
            _run_chaos_uni(7, 9, "metrics")


class TestEngagementRules:
    def test_scheduler_capability_flags(self):
        assert FifoScheduler.head_only and FifoScheduler.round_batchable
        assert not LifoScheduler.head_only
        assert not LifoScheduler.round_batchable
        assert not RandomScheduler.head_only
        assert not AdversarialScheduler.round_batchable
        # The bench/oracle idiom: head-only without batchability.
        assert _HeapFifo.head_only and not _HeapFifo.round_batchable

    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_ROUND_BATCH", raising=False)
        assert round_batching_enabled()
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        assert not round_batching_enabled()
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "")
        assert round_batching_enabled()

    @pytest.mark.parametrize("substrate", ["bidi", "line"])
    def test_batch_path_never_consults_the_oracle(
        self, substrate, monkeypatch
    ):
        """Poisoned LinkQueues: an engaged batch run must never build it."""

        class _Poisoned:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "round-batched run consulted the heap oracle"
                )

        if substrate == "bidi":
            import repro.ring.bidirectional as module

            def run(trace):
                return _run_chaos_bidi(7, 9, FifoScheduler(), trace)[0]
        else:
            import repro.ring.line as module

            def run(trace):
                return _run_chaos_line(7, 9, FifoScheduler(), trace)[0]

        monkeypatch.setattr(module, "LinkQueues", _Poisoned)
        # metrics + FifoScheduler: the batch engine carries the run.
        stats = run("metrics")
        assert stats.decision is True
        # Full traces still need the oracle...
        with pytest.raises(AssertionError, match="consulted the heap"):
            run("full")
        # ...and the kill switch forces metrics back onto it too.
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        with pytest.raises(AssertionError, match="consulted the heap"):
            run("metrics")

    def test_line_off_end_errors_identical(self, monkeypatch):
        """The batch enqueue validator matches the heap's, word for word."""

        class _Bad(Processor):
            def on_start(self):
                return [Send.ccw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return ()

        class _BadAlgo(RingAlgorithm):
            name = "bad"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Bad(letter, is_leader)

        def message(trace):
            with pytest.raises(ProtocolError) as info:
                LineNetwork(_BadAlgo(), "aa").run(trace=trace)
            return str(info.value)

        batched = message("metrics")
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        assert batched == message("metrics")

    def test_message_cap_errors_identical(self, monkeypatch):
        """The round-hoisted cap check raises exactly like the heap's."""

        class _Forever(Processor):
            def on_start(self):
                self.decide(True)
                return [Send.cw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return [Send.cw(bits)]

        class _ForeverAlgo(RingAlgorithm):
            name = "forever"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Forever(letter, is_leader)

        def message(trace):
            from repro.errors import RingError

            with pytest.raises(RingError) as info:
                run_bidirectional(
                    _ForeverAlgo(), "aaaa", max_messages=10, trace=trace
                )
            return str(info.value)

        batched = message("metrics")
        monkeypatch.setenv("REPRO_NO_ROUND_BATCH", "1")
        assert batched == message("metrics")
        monkeypatch.delenv("REPRO_NO_ROUND_BATCH")
        # A run that quiesces at exactly the cap does NOT raise, on
        # either engine (the boundary the hoisted check must respect).
        class _Once(Processor):
            def on_start(self):
                self.decide(True)
                return [Send.cw(Bits("1"))]

            def on_receive(self, bits, arrived_from):
                return ()

        class _OnceAlgo(RingAlgorithm):
            name = "once"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                return _Once(letter, is_leader)

        stats = run_bidirectional(
            _OnceAlgo(), "aa", max_messages=1, trace="metrics"
        )
        assert stats.message_count == 1


class TestIncrementalSortedView:
    """The non-head_only candidate list, maintained without re-sorting."""

    _KEYS = ["a", "b", "c", "d", "e"]

    def _check(self, queues: LinkQueues) -> None:
        expected = sorted(
            (queues.queues[key][0][0], key) for key in queues.active
        )
        assert queues.sorted_view == expected
        candidates = queues.next_candidates()
        if expected:
            assert candidates == [key for _, key in expected]
        else:
            assert candidates is None

    @given(ops=st.lists(st.integers(min_value=0, max_value=99), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_view_matches_full_resort_after_every_op(self, ops):
        queues = LinkQueues(use_heap=False)
        for op in ops:
            if op % 2 == 0 or not queues.active:
                queues.push(self._KEYS[op % len(self._KEYS)], Bits("1"))
            else:
                # Pop an arbitrary active key — non-head pops are the
                # interesting case (bisect delete from the middle).
                candidates = queues.next_candidates()
                queues.pop(candidates[op % len(candidates)])
            self._check(queues)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_every_scheduler_still_streams_exact_metrics(self, seed):
        """Lifo/Random/Adversarial metrics == full-trace accounting.

        These schedulers pop from arbitrary positions of the sorted
        view, so this pins the incremental maintenance end to end.
        """
        for scheduler in (
            LifoScheduler(),
            RandomScheduler(seed=seed),
            AdversarialScheduler(stride=2),
        ):
            fresh = type(scheduler)
            make = (
                (lambda: RandomScheduler(seed=seed))
                if fresh is RandomScheduler
                else (lambda: AdversarialScheduler(stride=2))
                if fresh is AdversarialScheduler
                else LifoScheduler
            )
            stats, _ = _run_chaos_bidi(seed, 9, make(), "metrics")
            full, _ = _run_chaos_bidi(seed, 9, make(), "full")
            _assert_stats_equal(stats, full.stats())
