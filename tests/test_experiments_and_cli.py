"""Integration tests: every experiment passes in quick mode; CLI works.

These are the paper's claims end-to-end: a failing experiment means a
theorem's measured shape broke somewhere in the stack.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import ALL_EXPERIMENTS, get_experiment
from repro.experiments.base import ExperimentResult, Sweep, default_rng


class TestRegistry:
    def test_all_twelve_registered(self):
        assert list(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 13)]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e7") is ALL_EXPERIMENTS["E7"]

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            get_experiment("E99")


@pytest.mark.parametrize("exp_id", list(ALL_EXPERIMENTS))
def test_experiment_passes_quick(exp_id):
    """Each experiment's claim check holds on the reduced sweep."""
    result = get_experiment(exp_id)(True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{exp_id} produced no rows"
    assert result.conclusions, f"{exp_id} drew no conclusions"
    result.require_passed()


class TestExperimentResult:
    def test_render_contains_table_and_verdict(self):
        result = get_experiment("E11")(True)
        text = result.render()
        assert "E11" in text
        assert "claim:" in text
        assert "RESULT: PASS" in text

    def test_require_passed_raises_on_failure(self):
        result = ExperimentResult(
            exp_id="EX",
            title="t",
            claim="c",
            columns=["a"],
            rows=[{"a": 1}],
            passed=False,
        )
        with pytest.raises(ReproError, match="EX failed"):
            result.require_passed()

    def test_sweep_selection(self):
        sweep = Sweep(full=(1, 2, 3), quick=(1,))
        assert sweep.sizes(quick=True) == (1,)
        assert sweep.sizes(quick=False) == (1, 2, 3)

    def test_default_rng_deterministic(self):
        assert default_rng().random() == default_rng().random()


class TestCLI:
    def test_single_experiment(self, capsys):
        assert main(["E11", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "E11" in output and "PASS" in output

    def test_multiple_experiments(self, capsys):
        assert main(["e8", "E10", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "E8" in output and "E10" in output
        assert "all 2 experiment(s) passed" in output

    def test_unknown_id_raises(self):
        with pytest.raises(ReproError):
            main(["E42", "--quick"])
