"""Integration tests: every experiment passes in quick mode; CLI works.

These are the paper's claims end-to-end: a failing experiment means a
theorem's measured shape broke somewhere in the stack.
"""

from __future__ import annotations

import pytest

from repro.cli import build_profile, main, parse_sizes
from repro.errors import ReproError
from repro.experiments import (
    ALL_EXPERIMENTS,
    LONG_PRESET_EXPERIMENTS,
    get_experiment,
)
from repro.experiments.base import (
    ExperimentResult,
    RunProfile,
    Sweep,
    default_rng,
)


class TestRegistry:
    def test_all_twelve_registered(self):
        assert list(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 13)]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e7") is ALL_EXPERIMENTS["E7"]

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            get_experiment("E99")


@pytest.mark.parametrize("exp_id", list(ALL_EXPERIMENTS))
def test_experiment_passes_quick(exp_id):
    """Each experiment's claim check holds on the reduced sweep."""
    result = get_experiment(exp_id)(True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{exp_id} produced no rows"
    assert result.conclusions, f"{exp_id} drew no conclusions"
    result.require_passed()


class TestExperimentResult:
    def test_render_contains_table_and_verdict(self):
        result = get_experiment("E11")(True)
        text = result.render()
        assert "E11" in text
        assert "claim:" in text
        assert "RESULT: PASS" in text

    def test_require_passed_raises_on_failure(self):
        result = ExperimentResult(
            exp_id="EX",
            title="t",
            claim="c",
            columns=["a"],
            rows=[{"a": 1}],
            passed=False,
        )
        with pytest.raises(ReproError, match="EX failed"):
            result.require_passed()

    def test_sweep_selection(self):
        sweep = Sweep(full=(1, 2, 3), quick=(1,))
        assert sweep.sizes(True) == (1,)
        assert sweep.sizes(False) == (1, 2, 3)

    def test_default_rng_deterministic(self):
        assert default_rng().random() == default_rng().random()


class TestRunProfile:
    def test_bool_coercion_matches_legacy_flags(self):
        assert RunProfile.coerce(True).preset == "quick"
        assert RunProfile.coerce(False).preset == "full"
        assert bool(RunProfile(preset="quick"))
        assert not bool(RunProfile(preset="full"))
        assert not bool(RunProfile(preset="long"))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError, match="unknown preset"):
            RunProfile(preset="huge")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ReproError, match="positive ring sizes"):
            RunProfile(sizes=(8, 0))
        with pytest.raises(ReproError, match="positive ring sizes"):
            RunProfile(sizes=())

    def test_sweep_profile_selection(self):
        sweep = Sweep(full=(1, 2, 3), quick=(1,), long=(10, 20))
        assert sweep.sizes(RunProfile(preset="quick")) == (1,)
        assert sweep.sizes(RunProfile(preset="full")) == (1, 2, 3)
        assert sweep.sizes(RunProfile(preset="long")) == (10, 20)
        assert sweep.sizes(RunProfile(sizes=(7, 8))) == (7, 8)

    def test_long_preset_falls_back_to_full(self):
        sweep = Sweep(full=(1, 2, 3), quick=(1,))
        assert sweep.sizes(RunProfile(preset="long")) == (1, 2, 3)

    def test_long_capable_sweeps_reach_ten_thousand(self):
        """Every long-preset experiment defines a long sweep with n >= 10^4."""
        import importlib

        modules = {
            "E1": "e01_regular_linear",
            "E7": "e07_wcw_quadratic",
            "E8": "e08_counters_nlogn",
            "E9": "e09_hierarchy",
            "E10": "e10_known_n",
            "E11": "e11_passes_tradeoff",
        }
        assert set(modules) == set(LONG_PRESET_EXPERIMENTS)
        for exp_id, module_name in modules.items():
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert module.SWEEP.long is not None, exp_id
            assert max(module.SWEEP.long) >= 10_000, exp_id


class TestCLIParsing:
    def test_parse_sizes(self):
        assert parse_sizes("6,12,24") == (6, 12, 24)
        assert parse_sizes(" 6, 12 ,24 ") == (6, 12, 24)
        assert parse_sizes("1024") == (1024,)

    def test_parse_sizes_rejects_garbage(self):
        with pytest.raises(ReproError, match="comma-separated integers"):
            parse_sizes("6,twelve")
        with pytest.raises(ReproError, match="positive"):
            parse_sizes("6,-12")
        with pytest.raises(ReproError, match="empty"):
            parse_sizes(",")

    def test_build_profile_presets(self):
        assert build_profile(None, None, False) == RunProfile(preset="full")
        assert build_profile(None, None, True) == RunProfile(preset="quick")
        assert build_profile("long", None, False) == RunProfile(preset="long")
        assert build_profile("quick", None, True) == RunProfile(preset="quick")
        assert build_profile(None, "4,8", False) == RunProfile(
            preset="full", sizes=(4, 8)
        )

    def test_build_profile_conflict(self):
        with pytest.raises(ReproError, match="conflicts"):
            build_profile("long", None, True)

    def test_cli_sizes_override(self, capsys):
        import re

        assert main(["E8", "--sizes", "6,12,24"]) == 0
        output = capsys.readouterr().out
        assert "E8" in output and "PASS" in output
        # The override must actually take effect: exactly the requested
        # sizes appear as table rows, none of the default sweep's extras.
        rows = re.findall(r"^\s*(\d+)\s", output, flags=re.MULTILINE)
        assert rows == ["6", "12", "24"]

    def test_cli_bad_sizes_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E8", "--sizes", "6,twelve"])
        assert excinfo.value.code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_cli_quick_preset_conflict_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E8", "--quick", "--preset", "long"])
        assert excinfo.value.code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_cli_sizes_notice_for_fixed_sweep_experiments(self, capsys):
        assert main(["E3", "--sizes", "6,12,24", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "E3 has no ring-size sweep" in captured.err
        assert "PASS" in captured.out

    def test_cli_preset_quick_equals_quick_flag(self, capsys):
        assert main(["E11", "--preset", "quick"]) == 0
        preset_output = capsys.readouterr().out
        assert main(["E11", "--quick"]) == 0
        quick_output = capsys.readouterr().out
        assert preset_output == quick_output


class TestShardFlagValidation:
    """--shard/ingest argument hygiene: every bad spelling is a clean
    argparse usage error (exit 2 + a message naming the rule), never a
    traceback or a silent misfill of somebody else's shard."""

    @pytest.mark.parametrize(
        "spelling, message",
        [
            ("0/3", "1-based"),
            ("4/3", "exceeds the fleet size"),
            ("x/3", "two positive integers"),
            ("1/0", "at least one shard"),
            ("1.5/3", "two positive integers"),
        ],
    )
    def test_cli_bad_shard_is_clean_usage_error(
        self, capsys, spelling, message
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["E9", "--quick", "--shard", spelling])
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err

    def test_parse_shard_roundtrip(self):
        from repro.runner import parse_shard

        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("3/3") == (3, 3)
        with pytest.raises(ReproError):
            parse_shard("2/")

    def test_cli_shard_conflicts_with_no_store(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E9", "--quick", "--shard", "1/3", "--no-store"])
        assert excinfo.value.code == 2
        assert "--no-store" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["report", "dashboard"])
    def test_cli_shard_rejected_in_read_only_modes(self, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--quick", "--shard", "1/3"])
        assert excinfo.value.code == 2
        assert "does not measure" in capsys.readouterr().err

    def test_cli_ingest_needs_sources(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest"])
        assert excinfo.value.code == 2
        assert "at least one source" in capsys.readouterr().err

    def test_cli_ingest_rejects_run_flags(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        for extra, message in (
            (["--jobs", "2"], "--jobs"),
            (["--store", str(tmp_path / "other")], "--into DIR"),
            (["--quick"], "--quick"),
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(["ingest", str(tmp_path / "src"), *extra])
            assert excinfo.value.code == 2
            assert message in capsys.readouterr().err

    def test_cli_into_and_strip_seconds_are_ingest_only(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E9", "--quick", "--into", "dir"])
        assert excinfo.value.code == 2
        assert "--into" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "E9", "--quick", "--strip-seconds"])
        assert excinfo.value.code == 2
        assert "--strip-seconds" in capsys.readouterr().err


class TestDocs:
    def test_readme_mentions_every_experiment(self):
        """The CI docs check, enforced locally: README.md is the front door
        and must name every registered experiment id."""
        import pathlib
        import re

        readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
        assert readme.is_file(), "README.md is missing"
        text = readme.read_text(encoding="utf-8")
        missing = [
            exp_id
            for exp_id in ALL_EXPERIMENTS
            if not re.search(rf"\b{exp_id}\b", text)
        ]
        assert not missing, f"README.md does not mention: {missing}"


class TestCLI:
    def test_single_experiment(self, capsys):
        assert main(["E11", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "E11" in output and "PASS" in output

    def test_multiple_experiments(self, capsys):
        assert main(["e8", "E10", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "E8" in output and "E10" in output
        assert "all 2 experiment(s) passed" in output

    def test_unknown_id_raises(self):
        with pytest.raises(ReproError):
            main(["E42", "--quick"])
