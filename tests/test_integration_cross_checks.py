"""Cross-cutting integration and property tests.

The strongest correctness oracle in the library is the collect-everything
recognizer (the leader literally evaluates membership on the reassembled
word).  Every specialized recognizer is cross-checked against it on random
rings; schedulers are swept for invariance; and hypothesis drives the
paper's dichotomy at small scale.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparison import CollectAllRecognizer, CopyRecognizer
from repro.core.counters import BlockCounterRecognizer
from repro.core.hierarchy import HierarchyRecognizer
from repro.core.passes_tradeoff import (
    OnePassTradeoffRecognizer,
    TwoPassTradeoffRecognizer,
)
from repro.core.regular_onepass import DFARecognizer
from repro.languages import (
    AnBn,
    AnBnCn,
    CopyLanguage,
    PeriodicLanguage,
    STANDARD_GROWTHS,
)
from repro.languages.regular import (
    parity_language,
    substring_language,
    tradeoff_language,
)
from repro.ring import run_bidirectional, run_unidirectional
from repro.ring.schedulers import (
    AdversarialScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
)


def oracle_decision(language, word: str) -> bool:
    """Run the collect-all recognizer as an independent distributed oracle."""
    trace = run_unidirectional(CollectAllRecognizer(language), word)
    return bool(trace.decision)


class TestOracleCrossChecks:
    @pytest.mark.parametrize(
        "language,algorithm",
        [
            (AnBnCn(), BlockCounterRecognizer("012")),
            (AnBn(), BlockCounterRecognizer("ab")),
            (CopyLanguage(), CopyRecognizer()),
        ],
        ids=["anbncn", "anbn", "copy"],
    )
    def test_specialized_equals_oracle(self, language, algorithm, rng):
        for n in range(1, 20):
            words = [
                language.sample_member(n, rng),
                language.sample_non_member(n, rng),
                language.random_word(n, rng),
            ]
            for word in words:
                if not word:
                    continue
                specialized = run_unidirectional(algorithm, word).decision
                assert specialized == oracle_decision(language, word), word

    @pytest.mark.parametrize("growth", STANDARD_GROWTHS, ids=lambda g: g.name)
    def test_hierarchy_equals_oracle(self, growth, rng):
        language = PeriodicLanguage(growth)
        algorithm = HierarchyRecognizer(language)
        for n in range(2, 16):
            word = language.random_word(n, rng)
            assert (
                run_unidirectional(algorithm, word).decision
                == oracle_decision(language, word)
            ), (growth.name, word)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_tradeoff_recognizers_equal_oracle(self, k, rng):
        language = tradeoff_language(k)
        one = OnePassTradeoffRecognizer(language)
        two = TwoPassTradeoffRecognizer(language)
        for n in range(1, 14):
            word = language.random_word(n, rng)
            expected = oracle_decision(language, word)
            assert run_unidirectional(one, word).decision == expected
            assert run_unidirectional(two, word).decision == expected


class TestSchedulerSweep:
    SCHEDULERS = [
        FifoScheduler(),
        LifoScheduler(),
        RandomScheduler(1),
        RandomScheduler(2),
        AdversarialScheduler(1),
        AdversarialScheduler(3),
    ]

    def test_decision_and_bits_invariant(self, rng):
        """Deterministic token algorithms: identical cost under any adversary."""
        language = parity_language()
        from repro.core.regular_bidirectional import BidirectionalDFARecognizer

        algorithm = BidirectionalDFARecognizer(language.dfa)
        for n in [3, 7, 12]:
            word = language.random_word(n, rng)
            reference = run_bidirectional(algorithm, word)
            for scheduler in self.SCHEDULERS:
                trace = run_bidirectional(algorithm, word, scheduler=scheduler)
                assert trace.decision == reference.decision
                assert trace.total_bits == reference.total_bits


class TestDichotomyProperty:
    """Hypothesis-driven form of the paper's main dichotomy at small scale."""

    @given(st.text(alphabet="ab", min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_regular_recognizer_exact_linear_cost(self, word):
        language = substring_language("ab")
        algorithm = DFARecognizer(language.dfa)
        trace = run_unidirectional(algorithm, word)
        assert trace.decision == language.contains(word)
        assert trace.total_bits == algorithm.bits_per_message * len(word)
        assert trace.message_count == len(word)

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_counting_superlinear_cost(self, n):
        from repro.core.counting import CountingAlgorithm, predicted_counting_bits

        algorithm = CountingAlgorithm()
        trace = run_unidirectional(algorithm, "a" * n)
        assert trace.total_bits == predicted_counting_bits(n)
        if n >= 2:
            # Strictly more than any fixed-width linear algorithm could use.
            assert trace.total_bits >= n

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_rotation_matters(self, data):
        """The pattern starts at the leader: rotations may change decisions."""
        language = substring_language("ab")
        algorithm = DFARecognizer(language.dfa)
        word = data.draw(st.text(alphabet="ab", min_size=2, max_size=10))
        rotation = data.draw(st.integers(min_value=0, max_value=len(word) - 1))
        rotated = word[rotation:] + word[:rotation]
        trace = run_unidirectional(algorithm, rotated)
        assert trace.decision == language.contains(rotated)


class TestSeedStability:
    def test_experiments_are_deterministic(self):
        """Two runs of the same experiment produce identical tables."""
        from repro.experiments import get_experiment

        first = get_experiment("E11")(True)
        second = get_experiment("E11")(True)
        assert first.rows == second.rows
        assert first.conclusions == second.conclusions
