"""Tests for the language layer: membership predicates and samplers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LanguageError
from repro.languages import (
    AnBn,
    AnBnCn,
    CopyLanguage,
    EqualCounts,
    FunctionLanguage,
    MajorityLanguage,
    MarkedPalindrome,
    PrimeLength,
    SquareLanguage,
)
from repro.languages.nonregular import is_prime
from repro.languages.regular import (
    length_mod_language,
    mod_count_language,
    parity_language,
    regex_language,
    substring_language,
    tradeoff_language,
)
from repro.languages.hierarchy import (
    STANDARD_GROWTHS,
    GrowthFunction,
    PeriodicLanguage,
    block_length,
)


ALL_NONREGULAR = [
    AnBn(),
    AnBnCn(),
    CopyLanguage(),
    MarkedPalindrome(),
    EqualCounts(),
    MajorityLanguage(),
    SquareLanguage(),
    PrimeLength(),
]


class TestBase:
    def test_function_language(self):
        lang = FunctionLanguage("odd-length", "ab", lambda w: len(w) % 2 == 1)
        assert "a" in lang
        assert "ab" not in lang

    def test_alphabet_validation(self):
        with pytest.raises(LanguageError):
            FunctionLanguage("bad", "", lambda w: True)
        with pytest.raises(LanguageError):
            FunctionLanguage("bad", ["ab"], lambda w: True)
        with pytest.raises(LanguageError):
            FunctionLanguage("bad", "aa", lambda w: True)

    def test_words_of_length(self):
        lang = FunctionLanguage("all", "ab", lambda w: True)
        assert sorted(lang.words_of_length(2)) == ["aa", "ab", "ba", "bb"]

    def test_members_of_length(self):
        lang = AnBn()
        assert list(lang.members_of_length(4)) == ["aabb"]
        assert list(lang.members_of_length(3)) == []

    def test_default_samplers(self, rng):
        lang = FunctionLanguage("has-a", "ab", lambda w: "a" in w)
        member = lang.sample_member(6, rng)
        assert member is not None and "a" in member
        non_member = lang.sample_non_member(6, rng)
        assert non_member == "b" * 6


class TestSamplerContracts:
    """Every sampler must return an exact-length word on the right side."""

    @pytest.mark.parametrize("language", ALL_NONREGULAR, ids=lambda l: l.name)
    def test_members(self, language, rng):
        for n in range(1, 25):
            word = language.sample_member(n, rng)
            if word is not None:
                assert len(word) == n
                assert language.contains(word), (language.name, word)

    @pytest.mark.parametrize("language", ALL_NONREGULAR, ids=lambda l: l.name)
    def test_non_members(self, language, rng):
        for n in range(1, 25):
            word = language.sample_non_member(n, rng)
            if word is not None:
                assert len(word) == n
                assert not language.contains(word), (language.name, word)


class TestNonRegularPredicates:
    def test_anbn(self):
        lang = AnBn()
        assert "" in lang
        assert "ab" in lang
        assert "aabb" in lang
        assert "ba" not in lang
        assert "aab" not in lang

    def test_anbncn(self):
        lang = AnBnCn()
        assert "" in lang
        assert "012" in lang
        assert "001122" in lang
        assert "010212" not in lang
        assert "0122" not in lang

    def test_copy(self):
        lang = CopyLanguage()
        assert "c" in lang
        assert "acba" not in lang
        assert "acab" not in lang
        assert "abcab" in lang
        assert "abcba" not in lang
        assert "abab" not in lang  # no marker
        assert "ccc" not in lang  # extra markers

    def test_marked_palindrome(self):
        lang = MarkedPalindrome()
        assert "c" in lang
        assert "abcba" in lang
        assert "abcab" not in lang

    def test_equal_counts(self):
        lang = EqualCounts()
        assert "ab" in lang and "ba" in lang and "" in lang
        assert "aab" not in lang

    def test_majority(self):
        lang = MajorityLanguage()
        assert "a" in lang and "aab" in lang
        assert "ab" not in lang and "" not in lang

    def test_square(self):
        lang = SquareLanguage()
        assert "" in lang and "abab" in lang
        assert "aba" not in lang and "abba" not in lang

    def test_prime_length(self):
        lang = PrimeLength()
        assert "aa" in lang and "aba" in lang and "ababa" in lang
        assert "a" not in lang and "aaaa" not in lang

    def test_is_prime(self):
        primes = [i for i in range(60) if is_prime(i)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]


class TestRegularFactories:
    def test_parity(self, rng):
        lang = parity_language()
        assert "" in lang and "aa" in lang and "bab" not in lang

    def test_mod_count(self):
        lang = mod_count_language("a", 3, 1)
        assert "a" in lang and "abba" not in lang and "aaaa" in lang

    def test_mod_count_validation(self):
        with pytest.raises(LanguageError):
            mod_count_language("z", 2, 0)
        with pytest.raises(LanguageError):
            mod_count_language("a", 2, 5)

    def test_substring(self):
        lang = substring_language("abb")
        assert "abb" in lang and "aabba" in lang and "babbab" in lang
        assert "ab" not in lang and "bba" not in lang

    def test_substring_overlapping(self):
        lang = substring_language("aba")
        assert "ababa" in lang and "abba" not in lang

    def test_length_mod(self):
        lang = length_mod_language(3, 2)
        assert "ab" in lang and "a" not in lang and "aabab" in lang

    def test_regex_language(self):
        lang = regex_language("ends-ab", "(a|b)*ab", "ab")
        assert "ab" in lang and "bab" in lang and "ba" not in lang

    def test_regular_sampler_exact(self, rng):
        lang = substring_language("abb")
        for n in range(3, 20):
            member = lang.sample_member(n, rng)
            assert member is not None and len(member) == n
            assert lang.contains(member)
        assert lang.sample_member(2, rng) is None

    def test_regular_sampler_impossible_length(self, rng):
        lang = length_mod_language(4, 3)
        assert lang.sample_member(4, rng) is None
        assert lang.sample_member(3, rng) is not None


class TestTradeoffLanguage:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_membership_definition(self, k):
        lang = tradeoff_language(k)
        for word in ["", "0", "01", "0011", lang.alphabet[-1] * 5]:
            index = len(word) % lang.modulus
            expected = word.count(lang.alphabet[index]) % 2 == 0
            assert lang.contains(word) == expected, word

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_dfa_agrees(self, k, rng):
        lang = tradeoff_language(k)
        dfa = lang.to_dfa()
        for _ in range(80):
            word = lang.random_word(rng.randrange(8), rng)
            assert dfa.accepts(word) == lang.contains(word), word

    def test_dfa_limit(self):
        with pytest.raises(LanguageError):
            tradeoff_language(4).to_dfa()

    def test_k_range(self):
        with pytest.raises(LanguageError):
            tradeoff_language(0)
        with pytest.raises(LanguageError):
            tradeoff_language(6)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_samplers(self, k, rng):
        lang = tradeoff_language(k)
        for n in range(1, 20):
            member = lang.sample_member(n, rng)
            assert member is not None and lang.contains(member)
            non_member = lang.sample_non_member(n, rng)
            assert non_member is not None and not lang.contains(non_member)


class TestHierarchyFamily:
    def test_block_length(self):
        growth = STANDARD_GROWTHS[0]  # n log2 n
        assert block_length(growth, 16) == 4
        assert block_length(growth, 256) == 8

    def test_growth_requires_positive(self):
        with pytest.raises(LanguageError):
            STANDARD_GROWTHS[0](0)

    def test_membership_full_periodicity(self):
        growth = GrowthFunction("quarter", lambda n: n * 3)
        lang = PeriodicLanguage(growth)  # p = 3
        assert lang.contains("abaaba")
        assert lang.contains("abaabaa")  # tail 'a' = prefix of 'aba'
        assert not lang.contains("abaabb")

    def test_empty_word(self):
        lang = PeriodicLanguage(STANDARD_GROWTHS[0])
        assert not lang.contains("")

    def test_degenerate_p_over_n(self):
        growth = GrowthFunction("huge", lambda n: n * n * 4)
        lang = PeriodicLanguage(growth)  # p = 4n > n
        assert not lang.contains("ab")

    @given(st.integers(min_value=2, max_value=60), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_sampler_properties(self, n, seed):
        rng = random.Random(seed)
        for growth in STANDARD_GROWTHS:
            lang = PeriodicLanguage(growth)
            member = lang.sample_member(n, rng)
            if member is not None:
                assert len(member) == n and lang.contains(member)
            non_member = lang.sample_non_member(n, rng)
            if non_member is not None:
                assert len(non_member) == n and not lang.contains(non_member)

    def test_p_one_is_constant_words(self):
        growth = GrowthFunction("n", lambda n: float(n))
        lang = PeriodicLanguage(growth)
        assert lang.contains("aaaa")
        assert lang.contains("bbb")
        assert not lang.contains("aab")
