"""The analytic bit-accounting engine and the sim/model/verify mode axis.

Three layers of guarantees:

* the closed forms in :mod:`repro.analysis.models` agree with brute-force
  summation (and with :func:`repro.core.counting.predicted_counting_bits`,
  the O(n) reference implementation);
* the model matches the simulator *bit for bit* at every simulable size —
  a hypothesis sweep over random (growth law, n, mode) triples, plus
  whole-table equality between sim-mode and model-mode runs;
* the plumbing honors the contract: model-mode cells never invoke the
  simulator (poisoned-simulator guard), sim and model records of the same
  (exp, size) coexist in one store without either going stale, and the
  CLI's ``--mode`` flag routes and reports verdicts end to end.
"""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import models as analytic
from repro.cli import main
from repro.core.counting import predicted_counting_bits
from repro.errors import ReproError
from repro.experiments import e09_hierarchy as e9
from repro.experiments import e10_known_n as e10
from repro.experiments.base import (
    MODES,
    SIM_CEILING,
    RunProfile,
    Sweep,
    route_mode,
)
from repro.runner import execute_campaign
from repro.runner.store import RunStore

QUICK = RunProfile(preset="quick")
QUICK_MODEL = RunProfile(preset="quick", mode="model")
QUICK_VERIFY = RunProfile(preset="quick", mode="verify")


class TestClosedForms:
    """The O(log n) formulas against brute-force summation."""

    @pytest.mark.parametrize("m", [0, 1, 2, 3, 4, 7, 8, 9, 255, 256, 300])
    def test_floor_log2_sum_matches_brute_force(self, m):
        brute = sum(int(math.floor(math.log2(i))) for i in range(1, m + 1))
        assert analytic.floor_log2_sum(m) == brute

    @pytest.mark.parametrize("m", [0, 1, 2, 3, 15, 16, 17, 100, 1023, 1024])
    def test_elias_gamma_sum_matches_brute_force(self, m):
        brute = sum(
            2 * int(math.floor(math.log2(i))) + 1 for i in range(1, m + 1)
        )
        assert analytic.elias_gamma_sum(m) == brute

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 100, 257])
    def test_counting_pass_bits_equals_reference(self, n):
        assert analytic.counting_pass_bits(n) == predicted_counting_bits(n)

    @pytest.mark.parametrize(
        "n,p", [(1, 1), (5, 1), (5, 5), (8, 3), (100, 10), (257, 16)]
    )
    def test_window_letter_sum_matches_brute_force(self, n, p):
        brute = sum(min(k + 1, p) for k in range(n))
        assert analytic.window_letter_sum(n, p) == brute

    def test_domain_validation(self):
        with pytest.raises(ReproError):
            analytic.counting_pass_bits(0)
        with pytest.raises(ReproError):
            analytic.window_letter_sum(4, 5)
        with pytest.raises(ReproError):
            analytic.window_letter_sum(4, 0)
        with pytest.raises(ReproError):
            analytic.elias_gamma_sum(-1)

    def test_model_version_matches_changelog(self):
        versions = [entry[0] for entry in analytic.MODEL_CHANGELOG]
        assert versions == sorted(versions)
        assert versions[-1] == analytic.MODEL_VERSION


class TestModelMatchesSimulator:
    """Bit-for-bit calibration at simulable sizes — the verify contract."""

    @given(
        name=st.sampled_from(sorted(e9._GROWTHS)),
        n=st.integers(min_value=2, max_value=96),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=40, deadline=None)
    def test_e9_model_bits_equal_simulator_bits(self, name, n, mode):
        rng = random.Random(20260808)
        params = {"growth": name, "n": n}
        if mode != "sim":
            params["mode"] = mode
        record = e9._measure(params, rng)
        model = e9._model_record(e9._GROWTHS[name], n)
        if mode == "verify":
            assert record["verdict"] == "PASS", record["mismatches"]
        if mode == "model":
            # Model output *is* the analytic prediction.
            for field in e9._VERIFY_FIELDS:
                assert record.get(field) == model.get(field)
        else:
            # Sim/verify output must equal it on every contract field.
            verdict = analytic.calibration_verdict(
                record, model, e9._VERIFY_FIELDS
            )
            assert verdict["verdict"] == "PASS", verdict["mismatches"]

    @given(
        name=st.sampled_from(sorted(e10._GROWTHS)),
        n=st.integers(min_value=2, max_value=96),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=40, deadline=None)
    def test_e10_hierarchy_model_bits_equal_simulator_bits(
        self, name, n, mode
    ):
        rng = random.Random(20260808)
        params = {"growth": name, "n": n}
        if mode != "sim":
            params["mode"] = mode
        record = e10._measure_hierarchy(params, rng)
        model = e10._model_hierarchy_record(e10._GROWTHS[name], n)
        if mode == "verify":
            assert record["verdict"] == "PASS", record["mismatches"]
        verdict = analytic.calibration_verdict(
            record, model, e10._HIERARCHY_VERIFY_FIELDS
        )
        assert verdict["verdict"] == "PASS", verdict["mismatches"]

    @given(
        n=st.integers(min_value=2, max_value=96),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=30, deadline=None)
    def test_e10_prime_model_bits_equal_simulator_bits(self, n, mode):
        rng = random.Random(20260808)
        params = {"n": n}
        if mode != "sim":
            params["mode"] = mode
        record = e10._measure_prime(params, rng)
        model = e10._model_prime_record(n)
        if mode == "verify":
            assert record["verdict"] == "PASS", record["mismatches"]
        verdict = analytic.calibration_verdict(
            record, model, e10._PRIME_VERIFY_FIELDS
        )
        assert verdict["verdict"] == "PASS", verdict["mismatches"]

    def test_model_tables_match_sim_tables_bit_for_bit(self):
        sim_rows = e9.run(QUICK).require_passed().rows
        model_rows = e9.run(QUICK_MODEL).require_passed().rows
        assert len(sim_rows) == len(model_rows)
        for sim_row, model_row in zip(sim_rows, model_rows):
            assert sim_row["compare bits"] == model_row["compare bits"]
            assert sim_row["total bits"] == model_row["total bits"]
        sim_rows = e10.run(QUICK).require_passed().rows
        model_rows = e10.run(QUICK_MODEL).require_passed().rows
        assert len(sim_rows) == len(model_rows)
        for sim_row, model_row in zip(sim_rows, model_rows):
            assert sim_row["bits"] == model_row["bits"]
            assert (
                sim_row["unknown-n bits"] == model_row["unknown-n bits"]
            )


class TestModeRouting:
    """The profile's mode axis: routing, sweeps, cell identity."""

    def test_route_mode(self):
        sim = RunProfile(preset="long")
        model = RunProfile(preset="long", mode="model")
        verify = RunProfile(preset="long", mode="verify")
        assert route_mode(sim, 10**6) == "sim"
        assert route_mode(model, 8) == "model"
        assert route_mode(verify, SIM_CEILING) == "verify"
        assert route_mode(verify, SIM_CEILING + 1) == "model"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            RunProfile(preset="quick", mode="guess")

    def test_model_long_sizes_invisible_to_sim_profiles(self):
        sweep = Sweep(
            full=(8,), quick=(4,), long=(16, 32), model_long=(64, 128)
        )
        assert sweep.sizes(RunProfile(preset="long")) == (16, 32)
        assert sweep.sizes(RunProfile(preset="long", mode="model")) == (
            16,
            32,
            64,
            128,
        )
        assert sweep.sizes(RunProfile(preset="long", mode="verify")) == (
            16,
            32,
            64,
            128,
        )
        # Non-long presets never see model_long.
        assert sweep.sizes(RunProfile(preset="full", mode="model")) == (8,)

    def test_long_model_sweeps_reach_two_to_the_twenty(self):
        long_model = RunProfile(preset="long", mode="model")
        assert max(e9.SWEEP.sizes(long_model)) >= 2**20
        assert max(e10.SWEEP.sizes(long_model)) >= 2**20

    def test_mode_distinguishes_cell_identity(self):
        sim_cells = {cell.key: cell for cell in e9.plan(QUICK)}
        model_cells = {cell.key: cell for cell in e9.plan(QUICK_MODEL)}
        assert not set(sim_cells) & set(model_cells)
        sim_hashes = {cell.config_hash() for cell in sim_cells.values()}
        model_hashes = {cell.config_hash() for cell in model_cells.values()}
        assert not sim_hashes & model_hashes


class TestPoisonedSimulator:
    """Model-mode cells must never touch the simulator."""

    def test_model_mode_never_invokes_run_unidirectional(self, monkeypatch):
        def poisoned(*args, **kwargs):
            raise AssertionError("model-mode cell invoked the simulator")

        # The experiments import run_unidirectional by name, so the
        # module attribute is the seam that proves the fast path.
        monkeypatch.setattr(e9, "run_unidirectional", poisoned)
        monkeypatch.setattr(e10, "run_unidirectional", poisoned)
        for module in (e9, e10):
            module.run(QUICK_MODEL).require_passed()

    def test_sim_mode_still_simulates_under_poison(self, monkeypatch):
        def poisoned(*args, **kwargs):
            raise AssertionError("sim path reached, as expected")

        monkeypatch.setattr(e9, "run_unidirectional", poisoned)
        with pytest.raises(AssertionError, match="sim path reached"):
            e9.run(QUICK)


class TestStoreCoexistence:
    """Sim and model records of the same (exp, size) share a store."""

    def test_sim_and_model_records_never_stale_each_other(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        execute_campaign([e9.SPEC], QUICK, store=store)
        execute_campaign([e9.SPEC], QUICK_MODEL, store=store)
        sim_cells = e9.SPEC.cells(QUICK)
        model_cells = e9.SPEC.cells(QUICK_MODEL)
        # Neither plan considers the other's records stale...
        assert store.stale_paths(sim_cells, QUICK) == []
        assert store.stale_paths(model_cells, QUICK_MODEL) == []
        assert store.prune_stale(model_cells, QUICK_MODEL) == []
        # ...and both remain loadable after the other reran.
        for cell in sim_cells:
            assert store.load(cell, QUICK) is not None
        for cell in model_cells:
            assert store.load(cell, QUICK_MODEL) is not None

    def test_stored_payload_carries_mode(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        execute_campaign([e10.SPEC], QUICK_VERIFY, store=store)
        payloads = [
            json.loads(path.read_text(encoding="utf-8"))
            for path in sorted(store.existing_files())
        ]
        assert payloads
        assert all(payload["mode"] == "verify" for payload in payloads)
        assert all(
            payload["record"]["verdict"] == "PASS" for payload in payloads
        )


class TestCliMode:
    """The --mode flag end to end."""

    def test_cli_model_mode_runs_and_reports(self, capsys):
        rc = main(["E9", "--quick", "--mode", "model", "--no-store", "--profile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "model-backed cell(s)" in out

    def test_cli_verify_mode_persists_pass_verdicts(self, tmp_path, capsys):
        root = tmp_path / "runs"
        rc = main(
            [
                "E9",
                "E10",
                "--quick",
                "--mode",
                "verify",
                "--store",
                str(root),
                "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify PASS" in out
        records = [
            json.loads(path.read_text(encoding="utf-8"))["record"]
            for path in root.rglob("*__*.json")
        ]
        assert records
        assert all(record["verdict"] == "PASS" for record in records)

    def test_cli_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["E9", "--quick", "--mode", "exact"])
