"""Tests for the telemetry layer: span journal, trace reports, ledger.

The layer's contract has three legs, each pinned here:

* **Invisibility** — a campaign with telemetry on renders byte-identical
  stdout and (seconds aside — wall clocks differ run to run) an
  identical store to one under ``REPRO_NO_TELEMETRY=1``;
* **Well-formedness** — the journal sidecar is line-parseable JSON,
  every span's start has a stop, and a truncated (crashed) journal
  still parses to its intact prefix;
* **Honest gating** — ``ledger check`` passes values inside the drift
  band, flags step changes, and treats short-history metrics as NEW.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import RunProfile, get_spec
from repro.obs.journal import (
    Journal,
    latest_journal,
    read_journal,
    telemetry_enabled,
    telemetry_root,
)
from repro.obs.ledger import append_run, check_ledger, seed_ledger
from repro.obs.report import (
    critical_path,
    idle_summary,
    load_trace,
    weight_calibration,
)
from repro.runner import execute_campaign

QUICK = RunProfile(preset="quick")
FLEET = ("E8", "E11")


def _specs():
    return [get_spec(exp_id) for exp_id in FLEET]


def _strip_seconds(node):
    """Drop every wall-clock field so stores compare structurally."""
    if isinstance(node, dict):
        return {
            key: _strip_seconds(value)
            for key, value in node.items()
            if key != "seconds"
        }
    if isinstance(node, list):
        return [_strip_seconds(item) for item in node]
    return node


def _store_snapshot(root: Path) -> "dict[str, object]":
    return {
        str(path.relative_to(root)): _strip_seconds(
            json.loads(path.read_text(encoding="utf-8"))
        )
        for path in sorted(root.rglob("*.json"))
    }


class TestJournal:
    def test_campaign_journal_is_well_formed(self):
        campaign = execute_campaign(_specs(), QUICK, jobs=2)
        assert campaign.journal is not None
        path = latest_journal(telemetry_root())
        assert path is not None
        events, dropped = read_journal(path)
        assert dropped == 0
        assert events[0]["ev"] == "campaign_start"
        assert events[0]["schema"] == 1
        assert events[-1]["ev"] == "campaign_stop"
        # Every span's start has exactly one matching stop (lifecycle
        # events like campaign_start carry no "span" id and don't pair).
        starts = {
            (e["ev"][: -len("_start")], e["span"])
            for e in events
            if e["ev"].endswith("_start") and "span" in e
        }
        stops = {
            (e["ev"][: -len("_stop")], e["span"])
            for e in events
            if e["ev"].endswith("_stop") and "span" in e
        }
        assert starts == stops
        assert any(kind == "cell" for kind, _span in starts)
        # The in-memory event list is the file, minus nothing.
        assert len(campaign.journal.events) == len(events)

    def test_truncated_journal_parses_to_intact_prefix(self):
        execute_campaign(_specs(), QUICK, jobs=1)
        path = latest_journal(telemetry_root())
        whole, dropped = read_journal(path)
        assert dropped == 0
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "cell_start", "t": 1.0, "tru')
        events, dropped = read_journal(path)
        assert dropped == 1
        assert len(events) == len(whole)

    def test_kill_switch_suppresses_journal(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TELEMETRY", "1")
        assert not telemetry_enabled()
        campaign = execute_campaign(_specs(), QUICK, jobs=1)
        assert campaign.journal is None
        root = Path(os.environ["REPRO_TELEMETRY_DIR"])
        assert not root.is_dir() or not list(root.iterdir())
        campaign.executions["E8"].result.require_passed()

    def test_journal_open_survives_unwritable_root(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", "/dev/null/nope")
        journal = Journal.open("campaign")
        assert journal is not None and journal.path is None
        journal.emit("probe")
        assert journal.events[-1]["ev"] == "probe"
        journal.close()


class TestParity:
    def test_stdout_and_store_identical_on_vs_off(
        self, tmp_path, capsys, monkeypatch
    ):
        argv = ["E8", "E11", "--quick", "--jobs", "2", "--store"]
        assert main(argv + [str(tmp_path / "store-on")]) == 0
        out_on = capsys.readouterr().out
        monkeypatch.setenv("REPRO_NO_TELEMETRY", "1")
        assert main(argv + [str(tmp_path / "store-off")]) == 0
        out_off = capsys.readouterr().out
        assert out_on == out_off
        on = _store_snapshot(tmp_path / "store-on")
        off = _store_snapshot(tmp_path / "store-off")
        assert on and on == off
        # The journal sidecar never leaks into the diffed store tree.
        assert not list((tmp_path / "store-on").rglob("*.jsonl"))


class TestTraceCLI:
    def test_trace_renders_latest_campaign(self, capsys):
        assert main(["E8", "E11", "--quick", "--jobs", "2", "--no-store"]) == 0
        capsys.readouterr()
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "== trace campaign-" in out
        assert "critical path" in out
        assert "per-worker utilization" in out
        assert "weight calibration" in out

    def test_trace_without_journals_fails_cleanly(self, capsys):
        assert main(["trace"]) == 1
        err = capsys.readouterr().err
        assert "no campaign journals" in err
        assert "REPRO_NO_TELEMETRY" in err

    def test_trace_rejects_run_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--jobs", "2"])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_profile_idle_line_comes_from_the_journal(self, capsys):
        assert main(
            ["E8", "E11", "--quick", "--jobs", "2", "--no-store", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "[idle: " in out
        assert "straggler" in out and "fold-barrier" in out

    def test_profile_idle_line_absent_when_telemetry_off(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_TELEMETRY", "1")
        assert main(
            ["E8", "E11", "--quick", "--jobs", "2", "--no-store", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "[idle: " not in out
        assert "utilization" in out  # the rest of --profile still prints


class TestReports:
    def test_critical_path_terminates_and_is_time_ordered(self):
        campaign = execute_campaign(_specs(), QUICK, jobs=2)
        trace = load_trace(campaign.journal.events)
        chain = critical_path(trace)
        assert chain, "a measured campaign always has a last-finishing item"
        assert all(a.t0 <= b.t0 for a, b in zip(chain, chain[1:]))
        worker = chain[-1].fields.get("worker")
        assert all(span.fields.get("worker") == worker for span in chain)

    def test_idle_summary_shares_sum_to_one(self):
        campaign = execute_campaign(_specs(), QUICK, jobs=2)
        summary = idle_summary(load_trace(campaign.journal.events))
        assert summary is not None
        assert summary["lanes"] >= 1
        if summary["idle_s"] > 0:
            assert sum(summary["shares"].values()) == pytest.approx(1.0)

    def test_weight_calibration_flags_the_dishonest_cell(self):
        entries = [("EX", f"n{i}", 1.0, 1.0) for i in range(3)]
        entries.append(("EX", "witness", 24.0, 1.0))
        rows = weight_calibration(entries)
        flagged = [row for row in rows if row["flagged"]]
        assert [row["key"] for row in flagged] == ["witness"]

    def test_weight_calibration_ignores_subsecond_noise(self):
        entries = [("EX", f"n{i}", 1.0, 0.01) for i in range(3)]
        entries.append(("EX", "small", 10.0, 0.01))
        assert not any(
            row["flagged"] for row in weight_calibration(entries)
        )

    def test_weight_calibration_needs_peers(self):
        rows = weight_calibration([("EX", "only", 24.0, 1.0)])
        assert not any(row["flagged"] for row in rows)


class TestLedger:
    @staticmethod
    def _record(value: float) -> dict:
        return {"name": "m.wall_s", "value": value, "unit": "s"}

    def test_check_passes_inside_the_band(self, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        for i, value in enumerate((10.0, 10.2, 9.9, 10.1)):
            append_run(path, f"r{i}", [self._record(value)])
        check = check_ledger(path)
        assert check.passed
        assert [row["verdict"] for row in check.rows] == ["OK"]

    def test_check_flags_a_step_change(self, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        for i, value in enumerate((10.0, 10.2, 9.9, 100.0)):
            append_run(path, f"r{i}", [self._record(value)])
        check = check_ledger(path)
        assert not check.passed
        assert check.violations[0]["name"] == "m.wall_s"
        assert "DRIFT" in check.render()

    def test_short_history_is_new_not_drift(self, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        append_run(path, "r0", [self._record(10.0)])
        append_run(path, "r1", [self._record(99.0)])
        check = check_ledger(path)
        assert check.passed
        assert [row["verdict"] for row in check.rows] == ["NEW"]

    def test_ledger_is_append_only(self, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        append_run(path, "r0", [self._record(1.0)])
        with pytest.raises(ReproError, match="append-only"):
            append_run(path, "r0", [self._record(2.0)])

    def test_seed_is_idempotent(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "BENCH_sample.json").write_text(
            json.dumps(
                {"date": "2026-08-08", "timings": {"fast_s": 1.5, "n": 4}}
            ),
            encoding="utf-8",
        )
        path = tmp_path / "LEDGER.jsonl"
        added, skipped = seed_ledger(bench_dir, path)
        assert added == 2 and skipped == 0
        added, skipped = seed_ledger(bench_dir, path)
        assert added == 0 and skipped == 1

    def test_cli_check_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "LEDGER.jsonl"
        for i, value in enumerate((10.0, 10.2, 9.9, 10.1)):
            append_run(path, f"r{i}", [self._record(value)])
        assert main(["ledger", "check", "--ledger", str(path)]) == 0
        assert "within band" in capsys.readouterr().out
        append_run(path, "bad", [self._record(500.0)])
        assert main(["ledger", "check", "--ledger", str(path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_cli_append_duplicate_run_is_a_clean_error(
        self, tmp_path, capsys
    ):
        bench = tmp_path / "one.json"
        bench.write_text(
            json.dumps({"records": [self._record(1.0)]}), encoding="utf-8"
        )
        path = tmp_path / "LEDGER.jsonl"
        argv = [
            "ledger", "append", str(bench),
            "--ledger", str(path), "--run-id", "r0",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "append-only" in capsys.readouterr().err
