"""Property tests over *random* algorithm structures.

The experiment suite tests the paper's constructions on the paper's
languages; these tests hammer the same machinery on randomly generated
structures, where hand-picked examples cannot hide bugs:

* random total DFAs through the full Theorem 1 -> simulator -> Theorem 2
  round trip (recognize, extract, compare);
* random finite one-pass transducers (not DFA-derived!) through the
  message graph: the extracted DFA must agree with direct ring simulation
  on every probed word;
* random words through the counting/cut machinery.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.equivalence import distinguishing_word
from repro.bits import Bits, encode_fixed, fixed_width_for
from repro.core.message_graph import build_message_graph, extract_dfa
from repro.core.regular_onepass import (
    DFARecognizer,
    OnePassTransducer,
    TransducerRingAlgorithm,
)
from repro.ring import run_unidirectional

from conftest import all_words, random_dfa


class RandomTableTransducer(OnePassTransducer):
    """A one-pass transducer defined by random lookup tables.

    Messages are fixed-width indices from a pool of ``size`` values; the
    relay table maps (letter, message) -> message and the decision table
    maps (leader letter, message) -> bool.  Every such transducer has a
    finite message graph, so Theorem 2's extraction must reproduce its
    language exactly.
    """

    alphabet = ("a", "b")  # satisfies the abstract property at class level

    def __init__(self, seed: int, size: int = 6) -> None:
        rng = random.Random(seed)
        self._width = fixed_width_for(size)
        self._size = size
        self._initial = {
            letter: rng.randrange(size) for letter in self.alphabet
        }
        self._relay = {
            (letter, index): rng.randrange(size)
            for letter in self.alphabet
            for index in range(size)
        }
        self._accept = {
            (letter, index): rng.random() < 0.5
            for letter in self.alphabet
            for index in range(size)
        }

    def initial_message(self, leader_letter: str) -> Bits:
        return encode_fixed(self._initial[leader_letter], self._width)

    def relay(self, letter: str, incoming: Bits) -> Bits:
        return encode_fixed(self._relay[(letter, incoming.to_int())], self._width)

    def decide(self, leader_letter: str, final: Bits) -> bool:
        return self._accept[(leader_letter, final.to_int())]


class TestRandomDFAsRoundTrip:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_recognize_extract_compare(self, seed):
        rng = random.Random(seed)
        dfa = random_dfa(rng, rng.randint(1, 7))
        recognizer = DFARecognizer(dfa)
        # Simulation agrees with the automaton.
        for word in ["a", "b", "ab", "ba", "aab", "bba", "abab"]:
            trace = run_unidirectional(recognizer, word)
            assert trace.decision == dfa.accepts(word), (seed, word)
        # Theorem 2 extraction recovers the language.
        graph = build_message_graph(recognizer.transducer, max_vertices=500)
        assert graph.is_finite()
        extracted = extract_dfa(
            graph, recognizer.transducer, accept_empty=dfa.accepts("")
        )
        assert distinguishing_word(extracted, dfa) is None, seed

    @given(st.integers(min_value=0, max_value=10_000), st.text("ab", min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_bit_cost_always_exact(self, seed, word):
        rng = random.Random(seed)
        dfa = random_dfa(rng, rng.randint(1, 9))
        recognizer = DFARecognizer(dfa)
        trace = run_unidirectional(recognizer, word)
        assert trace.total_bits == recognizer.bits_per_message * len(word)


class TestRandomTransducers:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_extraction_agrees_with_simulation(self, seed):
        transducer = RandomTableTransducer(seed)
        graph = build_message_graph(transducer, max_vertices=500)
        assert graph.is_finite()
        assert graph.message_count <= transducer._size
        extracted = extract_dfa(graph, transducer)
        algorithm = TransducerRingAlgorithm(transducer)
        for word in all_words("ab", 6):
            if not word:
                continue
            trace = run_unidirectional(algorithm, word)
            assert trace.decision == extracted.accepts(word), (seed, word)

    @given(st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=15, deadline=None)
    def test_cut_lemma_on_random_transducers(self, seed):
        """Equal-information-state cuts preserve random one-pass behavior."""
        from repro.core.information_state import verify_cut_lemma

        transducer = RandomTableTransducer(seed, size=3)
        algorithm = TransducerRingAlgorithm(transducer)
        rng = random.Random(seed)
        word = "".join(rng.choice("ab") for _ in range(14))
        report = verify_cut_lemma(algorithm, word)
        if report is not None:
            assert report.holds, (seed, word, report)


class TestRandomRingInvariants:
    @given(st.text("ab", min_size=1, max_size=25), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_trace_accounting_invariants(self, word, seed):
        """Structural invariants that must hold for any execution."""
        rng = random.Random(seed)
        dfa = random_dfa(rng, rng.randint(1, 6))
        trace = run_unidirectional(DFARecognizer(dfa), word)
        n = len(word)
        # Per-link totals sum to the total.
        assert sum(trace.bits_per_link().values()) == trace.total_bits
        # Per-processor send counts sum to the message count.
        assert sum(trace.messages_per_processor()) == trace.message_count
        # Information-state bit sizes double-count each message once as
        # sent and once as received.
        assert (
            sum(state.bit_size for state in trace.information_states())
            == 2 * trace.total_bits
        )
        # Pass decomposition partitions the events.
        assert sum(len(chunk) for chunk in trace.passes()) == trace.message_count
        # One-pass algorithms touch every processor exactly once.
        assert trace.message_count == n
