"""Tests for the ring simulators: unidirectional, bidirectional, line.

Model enforcement (only the leader decides, unidirectional means CW-only,
quiescence requires a decision), exact bit accounting, pass decomposition,
and scheduler invariance for deterministic token algorithms.
"""

from __future__ import annotations

import pytest

from repro.bits import Bits
from repro.errors import ProtocolError, RingError
from repro.ring import (
    BidirectionalRing,
    Direction,
    LineNetwork,
    Send,
    UnidirectionalRing,
    run_bidirectional,
    run_unidirectional,
)
from repro.ring.processor import Processor, RingAlgorithm
from repro.ring.schedulers import (
    AdversarialScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
)


class _EchoLeader(Processor):
    """Sends one bit CW; decides True when it returns."""

    def on_start(self):
        return [Send.cw(Bits("1"))]

    def on_receive(self, message, arrived_from):
        self.decide(True)
        return ()


class _Forward(Processor):
    def on_receive(self, message, arrived_from):
        return [Send.cw(message)]


class EchoRing(RingAlgorithm):
    name = "echo"

    def __init__(self):
        super().__init__("ab")

    def create_processor(self, letter, is_leader):
        if is_leader:
            return _EchoLeader(letter, is_leader=True)
        return _Forward(letter, is_leader=False)


class TestDirection:
    def test_opposite(self):
        assert Direction.CW.opposite() is Direction.CCW
        assert Direction.CCW.opposite() is Direction.CW

    def test_step(self):
        assert Direction.CW.step(0, 4) == 1
        assert Direction.CW.step(3, 4) == 0
        assert Direction.CCW.step(0, 4) == 3

    def test_send_constructors(self):
        assert Send.cw(Bits("1")).direction is Direction.CW
        assert Send.ccw(Bits("1")).direction is Direction.CCW


class TestUnidirectional:
    def test_basic_loop(self):
        trace = run_unidirectional(EchoRing(), "abab")
        assert trace.decision is True
        assert trace.message_count == 4
        assert trace.total_bits == 4
        assert [e.sender for e in trace.events] == [0, 1, 2, 3]
        assert [e.receiver for e in trace.events] == [1, 2, 3, 0]

    def test_single_processor_ring(self):
        trace = run_unidirectional(EchoRing(), "a")
        assert trace.decision is True
        assert trace.message_count == 1

    def test_empty_ring_rejected(self):
        with pytest.raises(RingError):
            UnidirectionalRing(EchoRing(), "")

    def test_foreign_letter_rejected(self):
        with pytest.raises(ProtocolError, match="not in algorithm alphabet"):
            UnidirectionalRing(EchoRing(), "abz")

    def test_ccw_send_rejected(self):
        class BadLeader(_EchoLeader):
            def on_start(self):
                return [Send.ccw(Bits("1"))]

        class Bad(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return BadLeader(letter, is_leader=True)
                return _Forward(letter, is_leader=False)

        with pytest.raises(ProtocolError, match="only send CW"):
            run_unidirectional(Bad(), "ab")

    def test_follower_cannot_decide(self):
        class SneakyFollower(_Forward):
            def on_receive(self, message, arrived_from):
                self.decide(True)
                return ()

        class Sneaky(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return _EchoLeader(letter, is_leader=True)
                return SneakyFollower(letter, is_leader=False)

        with pytest.raises(ProtocolError, match="only the leader"):
            run_unidirectional(Sneaky(), "ab")

    def test_no_decision_is_protocol_error(self):
        class Mute(_EchoLeader):
            def on_receive(self, message, arrived_from):
                return ()  # never decides

        class MuteRing(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return Mute(letter, is_leader=True)
                return _Forward(letter, is_leader=False)

        with pytest.raises(ProtocolError, match="without a leader decision"):
            run_unidirectional(MuteRing(), "ab")

    def test_message_cap(self):
        class Forever(_EchoLeader):
            def on_receive(self, message, arrived_from):
                return [Send.cw(message)]  # never stops

        class ForeverRing(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return Forever(letter, is_leader=True)
                return _Forward(letter, is_leader=False)

        with pytest.raises(RingError, match="diverge"):
            run_unidirectional(ForeverRing(), "ab", max_messages=50)

    def test_conflicting_decisions(self):
        class Flipper(_EchoLeader):
            def on_receive(self, message, arrived_from):
                self.decide(True)
                with pytest.raises(ProtocolError):
                    self.decide(False)
                self.decide(True)  # idempotent re-decide is fine
                return ()

        class FlipRing(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return Flipper(letter, is_leader=True)
                return _Forward(letter, is_leader=False)

        assert run_unidirectional(FlipRing(), "ab").decision is True

    def test_non_send_return_rejected(self):
        class Wrong(_EchoLeader):
            def on_start(self):
                return [("cw", Bits("1"))]

        class WrongRing(EchoRing):
            def create_processor(self, letter, is_leader):
                if is_leader:
                    return Wrong(letter, is_leader=True)
                return _Forward(letter, is_leader=False)

        with pytest.raises(ProtocolError, match="must yield Send"):
            run_unidirectional(WrongRing(), "ab")


class _PingPongLeader(Processor):
    """Bidirectional exercise: sends CCW, waits for reply from CCW side."""

    def on_start(self):
        return [Send.ccw(Bits("10"))]

    def on_receive(self, message, arrived_from):
        self.decide(message == Bits("10"))
        return ()


class _PingPongFollower(Processor):
    def on_receive(self, message, arrived_from):
        # Keep the message moving in its travel direction.
        return [Send(arrived_from.opposite(), message)]


class PingPong(RingAlgorithm):
    name = "ping-pong"

    def __init__(self):
        super().__init__("ab")

    def create_processor(self, letter, is_leader):
        if is_leader:
            return _PingPongLeader(letter, is_leader=True)
        return _PingPongFollower(letter, is_leader=False)


class TestBidirectional:
    def test_ccw_travel(self):
        trace = run_bidirectional(PingPong(), "aaaa")
        assert trace.decision is True
        assert trace.message_count == 4
        assert all(e.direction is Direction.CCW for e in trace.events)
        assert [e.receiver for e in trace.events] == [3, 2, 1, 0]

    def test_two_processor_ring(self):
        trace = run_bidirectional(PingPong(), "ab")
        assert trace.decision is True
        assert trace.message_count == 2

    @pytest.mark.parametrize(
        "scheduler",
        [
            FifoScheduler(),
            LifoScheduler(),
            RandomScheduler(3),
            AdversarialScheduler(),
        ],
        ids=["fifo", "lifo", "random", "adversarial"],
    )
    def test_scheduler_invariance_for_token_algorithms(self, scheduler):
        """A one-in-flight algorithm is oblivious to the scheduler."""
        trace = run_bidirectional(PingPong(), "abab", scheduler=scheduler)
        assert trace.decision is True
        assert trace.total_bits == 8
        assert trace.max_in_flight == 1

    def test_bad_scheduler_choice(self):
        class Broken(FifoScheduler):
            def choose(self, candidates):
                return 99

        with pytest.raises(RingError, match="scheduler chose"):
            run_bidirectional(PingPong(), "ab", scheduler=Broken())

    def test_quiesce_without_decision(self):
        class Mute(RingAlgorithm):
            name = "mute"

            def __init__(self):
                super().__init__("a")

            def create_processor(self, letter, is_leader):
                leader = is_leader

                class P(Processor):
                    def on_start(self):
                        return ()

                    def on_receive(self, message, arrived_from):
                        return ()

                return P(letter, is_leader=leader)

        with pytest.raises(ProtocolError):
            run_bidirectional(Mute(), "aa")


class TestLineNetwork:
    def test_line_delivery(self):
        class LineLeader(Processor):
            def on_start(self):
                return [Send.cw(Bits("1"))]

            def on_receive(self, message, arrived_from):
                self.decide(True)
                return ()

        class LineEcho(Processor):
            def __init__(self, letter, is_leader, is_last):
                super().__init__(letter, is_leader)
                self._is_last = is_last

            def on_receive(self, message, arrived_from):
                if self._is_last:
                    return [Send.ccw(message)]  # bounce back
                return [Send(arrived_from.opposite(), message)]

        class LineAlgo(RingAlgorithm):
            name = "line-echo"

            def __init__(self):
                super().__init__("ab")

            def create_processor(self, letter, is_leader):
                raise ProtocolError("positioned only")

            def create_processor_positioned(self, letter, is_leader, index, size):
                if is_leader:
                    return LineLeader(letter, is_leader=True)
                return LineEcho(letter, is_leader, is_last=index == size - 1)

        trace = LineNetwork(LineAlgo(), "abab").run()
        assert trace.decision is True
        # 3 hops right + 3 hops back.
        assert trace.message_count == 6

    def test_off_end_send_rejected(self):
        class Bad(RingAlgorithm):
            name = "bad-line"

            def __init__(self):
                super().__init__("a")

            def create_processor(self, letter, is_leader):
                class P(Processor):
                    def on_start(self):
                        return [Send.ccw(Bits("1"))]  # off the left end

                    def on_receive(self, message, arrived_from):
                        return ()

                return P(letter, is_leader)

        with pytest.raises(ProtocolError, match="off the end"):
            LineNetwork(Bad(), "aa").run()


class TestTraceAccounting:
    def test_bits_per_link_and_min_link(self):
        trace = run_unidirectional(EchoRing(), "abab")
        per_link = trace.bits_per_link()
        assert per_link == {0: 1, 1: 1, 2: 1, 3: 1}
        assert trace.min_bits_link() == 0  # tie broken by smallest id

    def test_passes(self):
        trace = run_unidirectional(EchoRing(), "abab")
        assert trace.pass_count() == 1
        assert trace.bits_of_pass(0) == 4
        with pytest.raises(RingError):
            trace.bits_of_pass(1)

    def test_messages_per_processor(self):
        trace = run_unidirectional(EchoRing(), "aba")
        assert trace.messages_per_processor() == [1, 1, 1]

    def test_information_states(self):
        trace = run_unidirectional(EchoRing(), "abab")
        state = trace.information_state(1)
        assert state.letter == "b"
        assert state.received(Direction.CCW) == (Bits("1"),)
        assert state.sent(Direction.CW) == (Bits("1"),)
        assert state.bit_size == 2
        assert state.message_count == 2
        # Followers with the same letter share states; leader differs.
        assert trace.distinct_information_states() == 3

    def test_information_state_bounds(self):
        trace = run_unidirectional(EchoRing(), "ab")
        with pytest.raises(RingError):
            trace.information_state(5)

    def test_summary(self):
        trace = run_unidirectional(EchoRing(), "ab")
        summary = trace.summary()
        assert "n=2" in summary and "decision=True" in summary
