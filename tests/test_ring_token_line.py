"""Tests for the Theorem 5 machinery: token serialization and ring->line."""

from __future__ import annotations

import pytest

from repro.bits import Bits
from repro.core.comparison import CopyRecognizer
from repro.core.counters import BlockCounterRecognizer
from repro.core.regular_onepass import DFARecognizer
from repro.errors import RingError, TokenViolation
from repro.languages.regular import parity_language
from repro.ring import run_bidirectional, run_unidirectional
from repro.ring.line import restore_from_line, ring_to_line
from repro.ring.token import (
    assert_token_trace,
    is_token_trace,
    serialize_to_token,
)

from test_ring_simulators import EchoRing, PingPong


def events_signature(events):
    return [(e.sender, e.receiver, e.direction, e.bits) for e in events]


class TestTokenPredicate:
    def test_sequential_is_token(self):
        trace = run_unidirectional(EchoRing(), "abab")
        assert is_token_trace(trace)
        assert_token_trace(trace)

    def test_chaotic_is_not_token(self):
        from repro.experiments.e05_token_line import ChaoticBroadcast

        trace = run_bidirectional(ChaoticBroadcast(), "aaaa")
        assert trace.max_in_flight == 2
        assert not is_token_trace(trace)
        with pytest.raises(TokenViolation):
            assert_token_trace(trace)


class TestSerializeToToken:
    def test_sequential_overhead_is_flag_bit_only(self):
        """A one-in-flight algorithm: token never moves idle."""
        trace = run_unidirectional(EchoRing(), "abababab")
        token = serialize_to_token(trace)
        assert token.move_bits == 0
        assert token.carry_bits == trace.total_bits + trace.message_count
        assert token.overhead_ratio == 2.0  # 1-bit payloads doubled by flag

    def test_larger_payloads_lower_ratio(self):
        algorithm = BlockCounterRecognizer("012")
        trace = run_unidirectional(algorithm, "001122")
        token = serialize_to_token(trace)
        assert token.move_bits == 0
        assert 1.0 < token.overhead_ratio < 1.2

    def test_preserves_payloads(self):
        for word in ["abab", "aabb", "ababab"]:
            trace = run_unidirectional(DFARecognizer(parity_language().dfa), word)
            token = serialize_to_token(trace)
            assert token.preserves_payloads()

    def test_ccw_travel(self):
        trace = run_bidirectional(PingPong(), "abab")
        token = serialize_to_token(trace)
        assert token.preserves_payloads()
        assert token.move_bits == 0

    def test_chaotic_broadcast_bounded(self):
        from repro.experiments.e05_token_line import ChaoticBroadcast

        trace = run_bidirectional(ChaoticBroadcast(), "a" * 16)
        token = serialize_to_token(trace)
        assert token.preserves_payloads()
        # Causal reordering lets the token finish one wave then the other:
        # bounded overhead despite concurrency.
        assert token.overhead_ratio <= 3.0

    def test_carry_count_matches_messages(self):
        trace = run_unidirectional(CopyRecognizer(), "abcab")
        token = serialize_to_token(trace)
        assert len(token.payload_events()) == trace.message_count


class TestRingToLine:
    @pytest.mark.parametrize(
        "word",
        ["ab", "abab", "aabbab", "abababab"],
    )
    def test_ratio_bound(self, word):
        trace = run_unidirectional(DFARecognizer(parity_language().dfa), word)
        result = ring_to_line(trace)
        assert result.ratio <= 4.0

    def test_needs_two_processors(self):
        trace = run_unidirectional(EchoRing(), "a")
        with pytest.raises(RingError):
            ring_to_line(trace)

    def test_cut_link_is_min_bits(self):
        trace = run_unidirectional(EchoRing(), "abab")
        result = ring_to_line(trace)
        totals = trace.bits_per_link()
        assert totals[result.cut_link] == min(totals.values())

    def test_renumbering_is_permutation(self):
        trace = run_unidirectional(EchoRing(), "ababa")
        result = ring_to_line(trace)
        assert sorted(result.new_index) == list(range(5))

    def test_rerouted_chain_length(self):
        trace = run_unidirectional(EchoRing(), "abab")
        result = ring_to_line(trace)
        rerouted = result.rerouted_messages()
        tagged = [e for e in result.events if e.bits[0] == 1]
        assert len(tagged) == rerouted * (len(trace.word) - 1)

    def test_events_stay_on_line(self):
        trace = run_unidirectional(CopyRecognizer(), "abcab")
        result = ring_to_line(trace)
        n = trace.ring_size
        for event in result.events:
            assert 0 <= event.sender < n and 0 <= event.receiver < n
            assert abs(event.sender - event.receiver) == 1

    @pytest.mark.parametrize(
        "algorithm,word",
        [
            (EchoRing(), "abab"),
            (DFARecognizer(parity_language().dfa), "aabbab"),
            (CopyRecognizer(), "abcab"),
            (BlockCounterRecognizer("012"), "001122"),
        ],
        ids=["echo", "dfa", "copy", "counters"],
    )
    def test_restore_inverts(self, algorithm, word):
        trace = run_unidirectional(algorithm, word)
        result = ring_to_line(trace)
        restored = restore_from_line(result)
        assert events_signature(restored) == events_signature(trace.events)

    def test_restore_inverts_bidirectional(self):
        trace = run_bidirectional(PingPong(), "abab")
        result = ring_to_line(trace)
        restored = restore_from_line(result)
        assert events_signature(restored) == events_signature(trace.events)

    def test_marker_bits_present(self):
        trace = run_unidirectional(EchoRing(), "abab")
        result = ring_to_line(trace)
        for event in result.events:
            assert event.bits[0] in (0, 1)
            assert len(event.bits) >= 2  # marker + at least 1 payload bit


class TestTokenLineComposition:
    def test_token_then_line_total_bound(self):
        """The full Theorem 5 pipeline: <= 3x then <= 4x => <= 12x."""
        trace = run_unidirectional(BlockCounterRecognizer("ab"), "aabb")
        token = serialize_to_token(trace)
        line = ring_to_line(trace)
        combined = token.overhead_ratio * line.ratio
        assert combined <= 12.0


class TestCutOverride:
    def test_forced_cut_is_respected(self):
        trace = run_unidirectional(EchoRing(), "abab")
        result = ring_to_line(trace, cut=2)
        assert result.cut_link == 2

    def test_forced_cut_still_invertible(self):
        trace = run_unidirectional(CopyRecognizer(), "abcab")
        for cut in range(len(trace.word)):
            result = ring_to_line(trace, cut=cut)
            restored = restore_from_line(result)
            assert events_signature(restored) == events_signature(trace.events)

    def test_bad_cut_rejected(self):
        trace = run_unidirectional(EchoRing(), "ab")
        with pytest.raises(RingError, match="outside ring"):
            ring_to_line(trace, cut=9)
