"""Cell model, executor determinism, run store, resume, and report tests.

The contracts under test are the ones the CLI advertises: a profile run
with ``--jobs N`` renders byte-identical tables for every N (per-cell
seed derivation, plan-order folding), a partially stored run resumed
with ``--resume`` completes and matches a fresh run, and ``report``
renders from the store alone or fails naming the missing cells.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import ALL_SPECS, RunProfile, cell_seed, get_spec
from repro.experiments.base import Cell, ExperimentSpec, run_cell
from repro.runner import (
    RunStore,
    execute_plan,
    report_from_store,
)

QUICK = RunProfile(preset="quick")


def _ok_cell_fn(params, rng):
    return {"n": params["n"], "bits": params["n"]}


def _boom_cell_fn(params, rng):
    raise ValueError("cell exploded")


def _fragile_plan(profile):
    cells = [
        Cell(
            exp_id="EX",
            key=f"n={n}",
            fn=_ok_cell_fn,
            params={"n": n},
            seed=cell_seed("EX", f"n={n}"),
        )
        for n in (1, 2, 3)
    ]
    cells.append(
        Cell(
            exp_id="EX",
            key="boom",
            fn=_boom_cell_fn,
            params={},
            seed=cell_seed("EX", "boom"),
        )
    )
    return cells


FRAGILE = ExperimentSpec(exp_id="EX", plan=_fragile_plan, finalize=None)


class TestCellModel:
    def test_cell_seed_is_identity_based(self):
        assert cell_seed("E8", "n=6") == cell_seed("E8", "n=6")
        assert cell_seed("E8", "n=6") != cell_seed("E8", "n=12")
        assert cell_seed("E8", "n=6") != cell_seed("E7", "n=6")

    def test_run_cell_is_reproducible(self):
        cell = get_spec("E8").cells(QUICK)[0]
        assert run_cell(cell) == run_cell(cell)

    def test_records_are_json_serializable(self):
        for cell in get_spec("E8").cells(QUICK):
            json.dumps(run_cell(cell))

    def test_every_plan_has_unique_keys_and_matching_exp_id(self):
        for exp_id, spec in ALL_SPECS.items():
            cells = spec.cells(QUICK)
            assert cells, exp_id
            assert len({cell.key for cell in cells}) == len(cells), exp_id
            assert all(cell.key for cell in cells), exp_id
            assert all(cell.exp_id == exp_id for cell in cells), exp_id

    def test_duplicate_cell_keys_rejected(self):
        def _plan(profile):
            cell = get_spec("E8").cells(profile)[0]
            return [cell, cell]

        spec = ExperimentSpec(exp_id="EX", plan=_plan, finalize=None)
        with pytest.raises(ReproError, match="duplicate cell keys"):
            spec.cells(QUICK)

    def test_config_hash_tracks_params_and_seed(self):
        cell = get_spec("E8").cells(QUICK)[0]
        tweaked_params = Cell(
            exp_id=cell.exp_id,
            key=cell.key,
            fn=cell.fn,
            params={"n": 999},
            seed=cell.seed,
        )
        tweaked_seed = Cell(
            exp_id=cell.exp_id,
            key=cell.key,
            fn=cell.fn,
            params=dict(cell.params),
            seed=cell.seed + 1,
        )
        assert cell.config_hash() != tweaked_params.config_hash()
        assert cell.config_hash() != tweaked_seed.config_hash()

    def test_config_hash_tracks_measurement_code(self):
        """Changing the cell fn (name or source) invalidates stored records."""
        cell = get_spec("E8").cells(QUICK)[0]
        other_fn = get_spec("E7").cells(QUICK)[0].fn
        swapped = Cell(
            exp_id=cell.exp_id,
            key=cell.key,
            fn=other_fn,
            params=dict(cell.params),
            seed=cell.seed,
        )
        assert cell.config_hash() != swapped.config_hash()


class TestExecutorDeterminism:
    def test_serial_execute_matches_legacy_run(self):
        spec = get_spec("E8")
        assert (
            execute_plan(spec, QUICK).result.render()
            == spec.run(QUICK).render()
        )

    @pytest.mark.parametrize("exp_id", ["E1", "E8", "E11"])
    def test_parallel_tables_byte_identical(self, exp_id):
        """--jobs 4 == --jobs 1: same rows, bits, verdicts, rendering."""
        spec = get_spec(exp_id)
        serial = execute_plan(spec, QUICK, jobs=1)
        parallel = execute_plan(spec, QUICK, jobs=4)
        assert parallel.result.render() == serial.result.render()
        assert parallel.result.rows == serial.result.rows
        assert parallel.result.passed is serial.result.passed

    def test_parallel_records_match_serial(self):
        spec = get_spec("E8")
        serial = execute_plan(spec, QUICK, jobs=1)
        parallel = execute_plan(spec, QUICK, jobs=4)
        assert {o.cell.key: o.record for o in serial.outcomes} == {
            o.cell.key: o.record for o in parallel.outcomes
        }

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_raises_but_siblings_persist(self, tmp_path, jobs):
        """A broken cell must not cost the records its siblings measured."""
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="cell exploded"):
            execute_plan(FRAGILE, QUICK, jobs=jobs, store=store)
        survivors = [
            cell
            for cell in FRAGILE.cells(QUICK)
            if cell.key != "boom" and store.load(cell, QUICK) is not None
        ]
        # Parallel runs drain the whole pool before re-raising, so every
        # healthy cell is stored; the serial loop persists the cells it
        # reached (LPT order is plan order here — all weights equal —
        # and "boom" is last, so it reached all three).
        assert len(survivors) == 3

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ReproError, match="positive worker count"):
            execute_plan(get_spec("E8"), QUICK, jobs=0)

    def test_cell_seconds_aggregates_outcomes(self):
        execution = execute_plan(get_spec("E8"), QUICK)
        assert execution.cell_seconds == pytest.approx(
            sum(outcome.seconds for outcome in execution.outcomes)
        )
        assert execution.cached_count == 0


class TestRunStore:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        cell = get_spec("E8").cells(QUICK)[0]
        record = run_cell(cell)
        path = store.save(cell, QUICK, record, 0.25)
        assert path.is_file()
        assert str(path).startswith(str(tmp_path / "E8" / "quick"))
        hit = store.load(cell, QUICK)
        assert hit is not None
        assert hit.record == record
        assert hit.seconds == 0.25

    def test_load_misses_absent_and_corrupt_files(self, tmp_path):
        store = RunStore(tmp_path)
        cell = get_spec("E8").cells(QUICK)[0]
        assert store.load(cell, QUICK) is None
        path = store.path_for(cell, QUICK)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.load(cell, QUICK) is None

    def test_load_misses_on_malformed_seconds(self, tmp_path):
        store = RunStore(tmp_path)
        cell = get_spec("E8").cells(QUICK)[0]
        store.save(cell, QUICK, run_cell(cell), 0.0)
        path = store.path_for(cell, QUICK)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["seconds"] = "fast"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(cell, QUICK) is None

    def test_load_rejects_stale_config_hash(self, tmp_path):
        """A record whose embedded identity drifted is never trusted."""
        store = RunStore(tmp_path)
        cell = get_spec("E8").cells(QUICK)[0]
        store.save(cell, QUICK, run_cell(cell), 0.0)
        path = store.path_for(cell, QUICK)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["config_hash"] = "0" * 12
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(cell, QUICK) is None

    def test_presets_do_not_share_records(self, tmp_path):
        store = RunStore(tmp_path)
        cell = get_spec("E8").cells(QUICK)[0]
        store.save(cell, QUICK, run_cell(cell), 0.0)
        assert store.load(cell, RunProfile(preset="full")) is None


class TestResume:
    def test_resume_completes_partial_store_and_matches_fresh(self, tmp_path):
        """Kill-midway scenario: some cells stored, --resume fills the rest."""
        spec = get_spec("E8")
        store = RunStore(tmp_path)
        fresh = execute_plan(spec, QUICK)
        # Simulate an interrupted run: persist only half the cells.
        cells = spec.cells(QUICK)
        for outcome in execute_plan(spec, QUICK).outcomes[: len(cells) // 2]:
            store.save(outcome.cell, QUICK, outcome.record, outcome.seconds)
        resumed = execute_plan(spec, QUICK, store=store, resume=True)
        assert resumed.cached_count == len(cells) // 2
        assert resumed.result.render() == fresh.result.render()
        # And now the store is complete: a second resume measures nothing.
        again = execute_plan(spec, QUICK, store=store, resume=True)
        assert again.cached_count == len(cells)
        assert again.result.render() == fresh.result.render()

    def test_without_resume_store_is_rewritten_not_read(self, tmp_path):
        store = RunStore(tmp_path)
        spec = get_spec("E8")
        execute_plan(spec, QUICK, store=store)
        poisoned = spec.cells(QUICK)[0]
        store.save(poisoned, QUICK, {"n": 6, "bits": -1}, 0.0)
        execution = execute_plan(spec, QUICK, store=store, resume=False)
        assert execution.cached_count == 0
        assert store.load(poisoned, QUICK).record["bits"] != -1

    def test_report_requires_complete_store(self, tmp_path):
        spec = get_spec("E8")
        store = RunStore(tmp_path)
        with pytest.raises(ReproError, match="missing"):
            report_from_store(spec, QUICK, store)
        execute_plan(spec, QUICK, store=store)
        reported = report_from_store(spec, QUICK, store)
        assert reported.result.render() == spec.run(QUICK).render()
        assert all(outcome.cached for outcome in reported.outcomes)


class TestCLIRunnerFlags:
    def test_cli_jobs_output_identical(self, capsys, tmp_path):
        assert main(["E8", "--quick", "--no-store"]) == 0
        serial = capsys.readouterr().out
        assert main(["E8", "--quick", "--no-store", "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cli_profile_reports_cell_time(self, capsys):
        assert main(["E8", "--quick", "--no-store", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "of cell time across 4 cells" in output
        assert "jobs=1" in output

    def test_cli_run_then_report(self, capsys, tmp_path):
        store = str(tmp_path)
        assert main(["E8", "--quick", "--store", store]) == 0
        run_output = capsys.readouterr().out
        assert main(["report", "E8", "--quick", "--store", store]) == 0
        report_output = capsys.readouterr().out
        assert report_output == run_output

    def test_cli_report_fails_cleanly_when_store_empty(self, capsys, tmp_path):
        assert main(["report", "E8", "--quick", "--store", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "missing" in captured.err
        assert "FAILED" in captured.err

    def test_cli_report_conflicts_with_no_store(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "E8", "--quick", "--no-store"])
        assert excinfo.value.code == 2

    def test_cli_resume_conflicts_with_no_store(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E8", "--quick", "--resume", "--no-store"])
        assert excinfo.value.code == 2
        assert "drop --no-store" in capsys.readouterr().err

    def test_cli_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E8", "--quick", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "positive worker count" in capsys.readouterr().err

    def test_cli_resume_uses_store(self, capsys, tmp_path):
        store = str(tmp_path)
        assert main(["E8", "--quick", "--store", store]) == 0
        first = capsys.readouterr().out
        assert (
            main(["E8", "--quick", "--store", store, "--resume", "--profile"])
            == 0
        )
        second = capsys.readouterr().out
        assert "4 from store" in second
        assert second.splitlines()[:10] == first.splitlines()[:10]
