"""Fleet sharding tests: partition laws, ingest conflicts, byte identity.

The contracts under test are the fleet advertisements of ``--shard``
and ``ingest``: the shard partition is a pure function of cell identity
— pairwise disjoint, covering, and invariant to request order and
``--jobs`` — so N machines running the same campaign command fill
disjoint covering store subsets; ``ingest`` merges those stores under
explicit conflict rules (dedupe identical records keeping the older,
stale-prune differing-hash rivals with a listed report, skip corrupt
records with a warning, never cross mode boundaries); and the flagship
end-to-end contract: a 3-shard quick campaign, merged, renders
``report --all --refit`` and the dashboard byte-identically to an
unsharded single-machine run of the same campaign.

Wall clocks are the one nondeterministic field a record carries, so the
end-to-end comparisons go through ``ingest --strip-seconds`` on *both*
the merged fleet store and the unsharded baseline — exactly the recipe
the CI ``fleet-ingest`` job uses.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import ALL_SPECS, RunProfile, get_spec
from repro.experiments.base import Cell
from repro.runner import (
    RunStore,
    execute_campaign,
    execute_plan,
    ingest_stores,
    owns,
    parse_shard,
    shard_assignment,
    shard_index,
)
from repro.runner.sharding import campaign_assignment
from repro.runner.store import read_record_payload

from test_campaign import FLEET, QUICK, _fleet_specs


def _store_files(root) -> "dict[str, Path]":
    """Every record file under a store root, keyed by relative path."""
    root = Path(root)
    return {
        path.relative_to(root).as_posix(): path
        for path in root.rglob("*.json")
    }


def _record_sans_seconds(path: Path) -> dict:
    payload = read_record_payload(path)
    payload.pop("seconds")
    return payload


class TestParseShard:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1/1", (1, 1)),
            ("2/3", (2, 3)),
            (" 2 / 3 ", (2, 3)),
            ("10/10", (10, 10)),
        ],
    )
    def test_valid_spellings(self, text, expected):
        assert parse_shard(text) == expected

    @pytest.mark.parametrize(
        "text",
        ["0/3", "4/3", "x/3", "3/x", "1/0", "1/", "/3", "1.5/3", "-1/3", ""],
    )
    def test_malformed_spellings_rejected(self, text):
        with pytest.raises(ReproError, match="--shard"):
            parse_shard(text)

    def test_error_messages_name_the_rule(self):
        with pytest.raises(ReproError, match="1-based"):
            parse_shard("0/3")
        with pytest.raises(ReproError, match="exceeds the fleet size"):
            parse_shard("4/3")


class TestPartitionLaws:
    @given(
        exp_id=st.text(min_size=1, max_size=12),
        key=st.text(min_size=1, max_size=40),
        total=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_identity_lands_on_exactly_one_shard(
        self, exp_id, key, total
    ):
        index = shard_index(exp_id, key, total)
        assert 0 <= index < total
        # Deterministic: the same identity always lands on the same shard.
        assert shard_index(exp_id, key, total) == index
        # Exactly one 1-based shard owns it.
        owners = [
            i for i in range(1, total + 1)
            if shard_index(exp_id, key, total) == i - 1
        ]
        assert owners == [index + 1]

    @pytest.mark.parametrize("total", [1, 2, 3, 5])
    def test_real_plans_partition_disjoint_and_exhaustive(self, total):
        """Every quick-plan cell of every experiment lands on one shard."""
        cells = [
            cell
            for spec in ALL_SPECS.values()
            for cell in spec.cells(QUICK)
        ]
        assert cells
        claimed: "dict[tuple[str, str], int]" = {}
        for index in range(1, total + 1):
            for cell in cells:
                if owns((index, total), cell):
                    identity = (cell.exp_id, cell.key)
                    assert identity not in claimed, (
                        f"{identity} owned by shards "
                        f"{claimed[identity]} and {index}"
                    )
                    claimed[identity] = index
        assert len(claimed) == len({(c.exp_id, c.key) for c in cells})

    def test_assignment_is_pinned(self):
        """Golden values: the partition is part of the fleet protocol.

        A shard reassignment (hash function, encoding, or byte-slice
        change) silently strands every store a running fleet has already
        filled — this test makes that a loud failure instead.
        """
        assert shard_index("E1", "n=4", 3) == 0
        assert shard_index("E1", "n=8", 3) == 1
        assert shard_index("E1", "n=32", 3) == 2
        assert shard_index("E10", "case=prime/n=8/mode=model", 4) == 1

    def test_zero_size_fleet_rejected(self):
        with pytest.raises(ReproError, match="at least one shard"):
            shard_index("E1", "n=4", 0)


class TestShardedCampaign:
    def test_shard_stores_partition_the_unsharded_store(self, tmp_path):
        """3 shard fills produce disjoint file sets covering the base."""
        base = RunStore(tmp_path / "base")
        execute_campaign([get_spec("E9")], QUICK, store=base)
        shard_files = []
        for index in (1, 2, 3):
            store = RunStore(tmp_path / f"shard-{index}")
            execute_campaign(
                [get_spec("E9")], QUICK, store=store, shard=(index, 3)
            )
            shard_files.append(set(_store_files(store.root)))
        base_files = set(_store_files(base.root))
        assert set().union(*shard_files) == base_files
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (shard_files[i] & shard_files[j])

    def test_partition_invariant_to_request_order(self, tmp_path):
        """[E9, E10] and [E10, E9] fill identical shard stores."""
        forward = RunStore(tmp_path / "fwd")
        execute_campaign(
            [get_spec("E9"), get_spec("E10")],
            QUICK,
            store=forward,
            shard=(1, 3),
        )
        backward = RunStore(tmp_path / "bwd")
        execute_campaign(
            [get_spec("E10"), get_spec("E9")],
            QUICK,
            store=backward,
            shard=(1, 3),
        )
        fwd, bwd = _store_files(forward.root), _store_files(backward.root)
        assert set(fwd) == set(bwd)
        for rel in fwd:
            assert _record_sans_seconds(fwd[rel]) == _record_sans_seconds(
                bwd[rel]
            )

    def test_partition_invariant_to_jobs(self, tmp_path):
        """--jobs changes scheduling, never which cells a shard owns."""
        serial = RunStore(tmp_path / "serial")
        execute_campaign(
            [get_spec("E9")], QUICK, store=serial, shard=(1, 3), jobs=1
        )
        parallel = RunStore(tmp_path / "parallel")
        execute_campaign(
            [get_spec("E9")], QUICK, store=parallel, shard=(1, 3), jobs=2
        )
        one, two = _store_files(serial.root), _store_files(parallel.root)
        assert set(one) == set(two)
        for rel in one:
            assert _record_sans_seconds(one[rel]) == _record_sans_seconds(
                two[rel]
            )

    def test_partial_experiments_are_accounted(self, tmp_path):
        """A sharded campaign splits into finalized + partial, losslessly."""
        campaign = execute_campaign(
            _fleet_specs(),
            QUICK,
            store=RunStore(tmp_path / "s1"),
            shard=(1, 3),
        )
        assert campaign.shard == (1, 3)
        assert set(campaign.executions) | set(campaign.partial) == set(FLEET)
        assert not (set(campaign.executions) & set(campaign.partial))
        # Lossless accounting in work-item units: divisible cells ride
        # as their subtasks, so the planned pool counts K items per
        # divided cell, and so do the landed cells (with the hash
        # strategy a cell's parts stay together, so every landed cell
        # accounts for ALL of its items).
        def items(cell: Cell) -> int:
            return len(cell.subtasks()) if cell.divisible else 1

        planned = sum(
            items(cell)
            for spec in _fleet_specs()
            for cell in spec.cells(QUICK)
        )
        landed = sum(
            items(outcome.cell)
            for execution in (
                list(campaign.executions.values())
                + list(campaign.partial.values())
            )
            for outcome in execution.outcomes
        )
        assert landed + campaign.sharded_out == planned
        for part in campaign.partial.values():
            assert part.landed < part.planned
            for outcome in part.outcomes:
                assert owns((1, 3), outcome.cell)

    def test_execute_plan_refuses_partial_shard(self, tmp_path):
        """The single-experiment API has no partial result to return."""
        store = RunStore(tmp_path / "s1")
        with pytest.raises(ReproError, match="ingest"):
            execute_plan(get_spec("E9"), QUICK, store=store, shard=(1, 3))
        # Everything the shard measured was persisted before the raise.
        assert _store_files(store.root)

    def test_cli_shard_summary_line(self, tmp_path, capsys):
        rc = main(
            [
                "E9",
                "--quick",
                "--shard",
                "1/3",
                "--store",
                str(tmp_path / "s1"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[shard 1/3: measured" in out
        assert "ring-repro ingest" in out
        # Partial experiments mean no blanket pass claim.
        assert "experiment(s) passed" not in out


class TestIngestConflicts:
    def _plant(self, store: RunStore, exp_id="E9", profile=QUICK):
        """Fill one experiment and return its (cells, profile) plan."""
        execute_campaign([get_spec(exp_id)], profile, store=store)
        return get_spec(exp_id).cells(profile)

    def test_identical_records_dedupe_keeping_older(self, tmp_path):
        """Overlapping shard uploads merge to one copy per record."""
        first = RunStore(tmp_path / "first")
        second = RunStore(tmp_path / "second")
        self._plant(first)
        self._plant(second)
        report = ingest_stores(
            [first.root, second.root], tmp_path / "merged"
        )
        merged = _store_files(tmp_path / "merged")
        assert len(report.ingested) == len(merged)
        assert len(report.deduped) == len(merged)
        assert not report.pruned and not report.skipped
        # The kept copies are the earliest-listed source's records.
        assert all(
            path.is_relative_to(second.root) for path in report.deduped
        )

    def test_records_already_in_dest_win_dedupe(self, tmp_path):
        dest = RunStore(tmp_path / "merged")
        self._plant(dest)
        before = {
            rel: path.read_bytes()
            for rel, path in _store_files(dest.root).items()
        }
        src = RunStore(tmp_path / "src")
        self._plant(src)
        report = ingest_stores([src.root], dest.root)
        assert not report.ingested
        assert len(report.deduped) == len(before)
        after = {
            rel: path.read_bytes()
            for rel, path in _store_files(dest.root).items()
        }
        assert after == before

    def test_stale_conflict_keeps_current_code_hash(self, tmp_path):
        """Differing-hash rivals: the loadable-today record wins, listed.

        The stale rival is planted by rewriting a real record with a
        forged config hash — the shape an old-code shard upload has —
        in *both* source orders, so the arbiter (not listing order)
        decides.
        """
        genuine = RunStore(tmp_path / "genuine")
        self._plant(genuine)
        rel, path = sorted(_store_files(genuine.root).items())[0]
        payload = read_record_payload(path)
        current_hash = payload["config_hash"]
        stale = RunStore(tmp_path / "stale")
        forged = dict(payload, config_hash="0" * len(current_hash))
        forged_path = stale.write_payload(forged)
        for order in (["stale", "genuine"], ["genuine", "stale"]):
            dest = tmp_path / f"merged-{order[0]}-first"
            report = ingest_stores(
                [tmp_path / name for name in order], dest
            )
            assert len(report.pruned) == 1
            conflict = report.pruned[0]
            assert conflict.kept_hash == current_hash
            assert conflict.dropped_hash == forged["config_hash"]
            assert conflict.reason == "superseded by current code"
            assert "superseded by current code" in conflict.describe()
            merged = _store_files(dest)
            assert rel in merged
            assert (
                read_record_payload(merged[rel])["config_hash"]
                == current_hash
            )
            assert forged_path.name not in {
                Path(r).name for r in merged
            }

    def test_stale_conflict_in_dest_is_pruned_too(self, tmp_path):
        """A stale record pre-existing in the destination also loses."""
        dest = RunStore(tmp_path / "merged")
        genuine = RunStore(tmp_path / "genuine")
        self._plant(genuine)
        rel, path = sorted(_store_files(genuine.root).items())[0]
        payload = read_record_payload(path)
        forged = dict(payload, config_hash="0" * len(payload["config_hash"]))
        forged_path = dest.write_payload(forged)
        report = ingest_stores([genuine.root], dest.root)
        assert len(report.pruned) == 1
        assert not forged_path.exists()
        merged = _store_files(dest.root)
        assert (
            read_record_payload(merged[rel])["config_hash"]
            == payload["config_hash"]
        )

    def test_unknown_hash_pairs_keep_the_older_record(self, tmp_path):
        """Neither rival loadable today (two --sizes generations, say):
        the first-merged record wins, deterministically."""
        genuine = RunStore(tmp_path / "genuine")
        self._plant(genuine)
        rel, path = sorted(_store_files(genuine.root).items())[0]
        payload = read_record_payload(path)
        width = len(payload["config_hash"])
        older = RunStore(tmp_path / "older")
        newer = RunStore(tmp_path / "newer")
        older.write_payload(dict(payload, config_hash="a" * width))
        newer.write_payload(dict(payload, config_hash="b" * width))
        report = ingest_stores(
            [older.root, newer.root], tmp_path / "merged"
        )
        assert len(report.pruned) == 1
        conflict = report.pruned[0]
        assert conflict.kept_hash == "a" * width
        assert conflict.dropped_hash == "b" * width
        assert conflict.reason == "older record wins"
        kept = [
            record
            for record in map(
                read_record_payload, _store_files(tmp_path / "merged").values()
            )
            if record["key"] == payload["key"]
        ]
        assert len(kept) == 1
        assert kept[0]["config_hash"] == "a" * width

    def test_modes_never_conflict(self, tmp_path):
        """sim- and model-backed records of one (experiment, size) are
        distinct identities: merging shards of both modes keeps both."""
        sim = RunStore(tmp_path / "sim")
        model = RunStore(tmp_path / "model")
        self._plant(sim, "E9", QUICK)
        self._plant(model, "E9", RunProfile(preset="quick", mode="model"))
        report = ingest_stores([sim.root, model.root], tmp_path / "merged")
        assert not report.deduped and not report.pruned
        merged = _store_files(tmp_path / "merged")
        assert set(merged) == set(_store_files(sim.root)) | set(
            _store_files(model.root)
        )

    def test_corrupt_records_skip_with_warning(self, tmp_path):
        """One truncated shard upload never poisons the merge."""
        src = RunStore(tmp_path / "src")
        self._plant(src)
        files = sorted(_store_files(src.root).values())
        files[0].write_text(files[0].read_text()[:40])  # truncated JSON
        files[1].write_text(json.dumps({"exp_id": "E9"}))  # missing fields
        with pytest.warns(RuntimeWarning, match="skipping corrupt record"):
            report = ingest_stores([src.root], tmp_path / "merged")
        assert len(report.skipped) == 2
        assert {path for path, _reason in report.skipped} == set(files[:2])
        assert len(report.ingested) == len(files) - 2

    def test_strip_seconds_zeroes_wall_clocks(self, tmp_path):
        src = RunStore(tmp_path / "src")
        self._plant(src)
        assert any(
            read_record_payload(path)["seconds"] > 0
            for path in _store_files(src.root).values()
        )
        ingest_stores([src.root], tmp_path / "merged", strip_seconds=True)
        merged = _store_files(tmp_path / "merged")
        assert merged
        for path in merged.values():
            assert read_record_payload(path)["seconds"] == 0.0

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="not a directory"):
            ingest_stores([tmp_path / "absent"], tmp_path / "merged")

    def test_cli_ingest_reports_summary(self, tmp_path, capsys):
        src = RunStore(tmp_path / "src")
        self._plant(src)
        rc = main(
            [
                "ingest",
                str(src.root),
                "--into",
                str(tmp_path / "merged"),
                "--strip-seconds",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingested" in out and str(tmp_path / "merged") in out
        assert _store_files(tmp_path / "merged")


# The flagship end-to-end contract.  One module-scoped fill: an
# unsharded quick campaign (mixed sim/model/verify cells) next to the
# same campaign split across 3 shard legs, then both merged through
# ``ingest --strip-seconds`` into a/runs and b/runs — relative store
# names, so the dashboards rendered from them embed identical roots.
FLEET_SIZE = 3


@pytest.fixture(scope="module")
def fleet_stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    fills = [
        ["all", "--quick"],
        ["E9", "E10", "--quick", "--mode", "verify"],
        ["E9", "E10", "--quick", "--mode", "model"],
    ]
    for fill in fills:
        assert main([*fill, "--store", str(root / "base"), "--jobs", "2"]) == 0
    for index in range(1, FLEET_SIZE + 1):
        for fill in fills:
            assert (
                main(
                    [
                        *fill,
                        "--shard",
                        f"{index}/{FLEET_SIZE}",
                        "--store",
                        str(root / f"shard-{index}"),
                        "--jobs",
                        "2",
                    ]
                )
                == 0
            )
    (root / "a").mkdir()
    (root / "b").mkdir()
    ingest_stores([root / "base"], root / "a" / "runs", strip_seconds=True)
    ingest_stores(
        [root / f"shard-{index}" for index in range(1, FLEET_SIZE + 1)],
        root / "b" / "runs",
        strip_seconds=True,
    )
    return root


class TestFleetByteIdentity:
    def test_shard_stores_partition_the_base_store(self, fleet_stores):
        base = set(_store_files(fleet_stores / "base"))
        shards = [
            set(_store_files(fleet_stores / f"shard-{index}"))
            for index in range(1, FLEET_SIZE + 1)
        ]
        assert set().union(*shards) == base
        assert sum(len(files) for files in shards) == len(base)
        # Every shard got real work — the quick campaign is large
        # enough that an empty leg means the partition is broken.
        assert all(shards)

    def test_merged_store_byte_identical_to_unsharded(self, fleet_stores):
        merged = _store_files(fleet_stores / "b" / "runs")
        baseline = _store_files(fleet_stores / "a" / "runs")
        assert set(merged) == set(baseline)
        for rel in merged:
            assert (
                merged[rel].read_bytes() == baseline[rel].read_bytes()
            ), rel

    @pytest.mark.parametrize(
        "argv",
        [
            ["report", "--all", "--refit", "--quick"],
            ["report", "E9", "E10", "--refit", "--quick", "--mode", "verify"],
            ["report", "E9", "E10", "--quick", "--mode", "model"],
        ],
        ids=["campaign-sim", "verify", "model"],
    )
    def test_report_byte_identical(self, fleet_stores, capsys, argv):
        outputs = []
        for side in ("a", "b"):
            rc = main(
                [*argv, "--store", str(fleet_stores / side / "runs")]
            )
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "RESULT: PASS" in outputs[0]

    def test_dashboard_byte_identical(self, fleet_stores, monkeypatch):
        sites = []
        for side in ("a", "b"):
            # chdir + relative paths: campaign.json embeds the store
            # root, so both renders must name it identically.
            monkeypatch.chdir(fleet_stores / side)
            rc = main(
                [
                    "dashboard",
                    "--quick",
                    "--store",
                    "runs",
                    "--out",
                    "site",
                    "--fleet",
                    str(FLEET_SIZE),
                ]
            )
            assert rc == 0
            sites.append(
                {
                    path.name: path.read_bytes()
                    for path in (fleet_stores / side / "site").iterdir()
                }
            )
        assert sites[0].keys() == sites[1].keys()
        for name in sites[0]:
            assert sites[0][name] == sites[1][name], name
        payload = json.loads(sites[0]["campaign.json"].decode())
        assert payload["fleet"] == FLEET_SIZE
        # The derived shard column matches the partition that filled
        # the shard stores.
        for exp_id, experiment in payload["experiments"].items():
            for cell in experiment["cells"]:
                expected = shard_index(exp_id, cell["key"], FLEET_SIZE) + 1
                assert cell["shard"] == f"{expected}/{FLEET_SIZE}"


def _noop_cell_fn(params, rng):  # pragma: no cover - never measured
    return {}


def _cell(exp_id: str, key: str, weight: float) -> Cell:
    """A minimal cell carrying just the identity + weight LPT looks at."""
    return Cell(
        exp_id=exp_id, key=key, fn=_noop_cell_fn, params={}, seed=0,
        weight=weight,
    )


def _loads(cells, assignment, total) -> "list[float]":
    weights = {(exp_id, cell.key): cell.weight for exp_id, cell in cells}
    loads = [0.0] * total
    for identity, shard in assignment.items():
        loads[shard] += weights[identity]
    return loads


class TestWeightStrategy:
    """--shard-strategy weight: deterministic LPT over planned weights."""

    def _quick_cells(self):
        return [
            (spec.exp_id, cell)
            for spec in ALL_SPECS.values()
            for cell in spec.cells(QUICK)
        ]

    def test_assignment_is_pinned(self):
        """Golden values: the weight partition is fleet protocol too.

        Heaviest first, each to the lightest shard, ties toward the
        lowest shard index — any change to that rule strands running
        weight-sharded fleets exactly like a hash change would.
        """
        cells = [
            ("E1", _cell("E1", "n=8", 8.0)),
            ("E1", _cell("E1", "n=6", 6.0)),
            ("E1", _cell("E1", "n=5", 5.0)),
            ("E1", _cell("E1", "n=4", 4.0)),
            ("E1", _cell("E1", "n=3a", 3.0)),
            ("E1", _cell("E1", "n=3b", 3.0)),
        ]
        assignment = shard_assignment(cells, 2, "weight")
        assert assignment == {
            ("E1", "n=8"): 0,
            ("E1", "n=6"): 1,
            ("E1", "n=5"): 1,
            ("E1", "n=4"): 0,
            ("E1", "n=3a"): 1,
            ("E1", "n=3b"): 0,
        }
        loads = _loads(cells, assignment, 2)
        assert loads == [15.0, 14.0]

    def test_weight_tie_breaks_are_total(self):
        """Equal weights order by (exp_id, key): no ambiguity left."""
        cells = [
            ("E2", _cell("E2", "n=1", 1.0)),
            ("E1", _cell("E1", "n=2", 1.0)),
            ("E1", _cell("E1", "n=1", 1.0)),
        ]
        assignment = shard_assignment(cells, 2, "weight")
        assert assignment == {
            ("E1", "n=1"): 0,
            ("E1", "n=2"): 1,
            ("E2", "n=1"): 0,
        }

    @pytest.mark.parametrize("total", [1, 2, 3, 5])
    def test_partition_laws_on_real_plans(self, total):
        """Disjoint, covering, deterministic, order-invariant."""
        cells = self._quick_cells()
        assignment = shard_assignment(cells, total, "weight")
        assert set(assignment) == {(e, c.key) for e, c in cells}
        assert set(assignment.values()) <= set(range(total))
        assert shard_assignment(cells, total, "weight") == assignment

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_order_invariance(self, seed):
        """Any permutation of the planned cells partitions identically."""
        import random as _random

        cells = self._quick_cells()
        baseline = shard_assignment(cells, 3, "weight")
        shuffled = list(cells)
        _random.Random(seed).shuffle(shuffled)
        assert shard_assignment(shuffled, 3, "weight") == baseline

    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=1000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=40,
        ),
        total=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_lpt_never_loses_to_hash(self, weights, total):
        """LPT's max planned load <= the identity hash's, always."""
        cells = [
            ("EW", _cell("EW", f"n={i}", weight))
            for i, weight in enumerate(weights)
        ]
        lpt = _loads(cells, shard_assignment(cells, total, "weight"), total)
        hashed = _loads(cells, shard_assignment(cells, total, "hash"), total)
        assert max(lpt) <= max(hashed) + 1e-9

    def test_lpt_beats_hash_on_heavy_tail(self):
        """A crafted heavy tail the hash provably bunches, LPT spreads.

        ``shard_index("EW", "n=0", 2) == shard_index("EW", "n=3", 2)``
        (both hash to shard 0), so hash puts both heavy cells on one
        shard; LPT puts one on each.
        """
        assert shard_index("EW", "n=0", 2) == shard_index("EW", "n=3", 2)
        cells = [
            ("EW", _cell("EW", "n=0", 100.0)),
            ("EW", _cell("EW", "n=3", 100.0)),
            ("EW", _cell("EW", "n=1", 1.0)),
            ("EW", _cell("EW", "n=2", 1.0)),
        ]
        lpt = _loads(cells, shard_assignment(cells, 2, "weight"), 2)
        hashed = _loads(cells, shard_assignment(cells, 2, "hash"), 2)
        assert max(lpt) < max(hashed)
        assert max(lpt) == 101.0

    def test_quick_campaign_max_load_improves(self):
        """On the real quick campaign the balance strictly improves."""
        cells = self._quick_cells()
        for total in (2, 4):
            lpt = _loads(
                cells, shard_assignment(cells, total, "weight"), total
            )
            hashed = _loads(
                cells, shard_assignment(cells, total, "hash"), total
            )
            assert max(lpt) < max(hashed)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError, match="unknown shard strategy"):
            shard_assignment([], 2, "roundrobin")

    def test_weight_shards_partition_the_unsharded_store(self, tmp_path):
        """Weight-sharded legs merge back into exactly the baseline.

        E9's quick cells are divisible and the weight strategy splits
        one cell's parts across legs — so a single leg holds a mix of
        full records (cells it owns whole) and ``.json.part`` records
        (its share of split cells), pairwise disjoint across legs, and
        only the ingest fold reassembles the full baseline set.
        """
        base = RunStore(tmp_path / "base")
        execute_campaign([get_spec("E9")], QUICK, store=base)
        roots = []
        leg_items: "list[set[str]]" = []
        for index in (1, 2, 3):
            store = RunStore(tmp_path / f"shard-{index}")
            execute_campaign(
                [get_spec("E9")],
                QUICK,
                store=store,
                shard=(index, 3),
                shard_strategy="weight",
            )
            roots.append(store.root)
            leg_items.append(
                set(_store_files(store.root))
                | {
                    path.relative_to(store.root).as_posix()
                    for path in store.root.rglob("*.json.part")
                }
            )
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (leg_items[i] & leg_items[j])
        report = ingest_stores(roots, tmp_path / "merged")
        assert not report.parts_carried  # every split cell reassembled
        assert set(_store_files(tmp_path / "merged")) == set(
            _store_files(base.root)
        )
        assert not list((tmp_path / "merged").rglob("*.json.part"))

    def test_partition_ignores_resume_state(self, tmp_path):
        """A pre-filled store must not change which cells a leg owns.

        The assignment is computed over every *planned* cell; if it were
        computed over the post-resume leftovers, a leg that resumed a
        partial store would re-balance onto cells another leg owns.
        """
        spec = get_spec("E9")
        # The campaign partitions *work items* — divisible cells ride as
        # their subtasks — so compute ownership the same way: a cell's
        # full record lands on leg 1 only when leg 1 owns every part.
        items: "list[tuple[str, object]]" = []
        for cell in spec.cells(QUICK):
            if cell.divisible:
                items.extend(
                    (spec.exp_id, subtask) for subtask in cell.subtasks()
                )
            else:
                items.append((spec.exp_id, cell))
        assignment = campaign_assignment(items, 2, "weight")
        owned_items = {
            identity for identity, shard in assignment.items() if shard == 0
        }
        owned_fresh = set()
        for cell in spec.cells(QUICK):
            part_keys = (
                {(spec.exp_id, s.key) for s in cell.subtasks()}
                if cell.divisible
                else {(spec.exp_id, cell.key)}
            )
            if part_keys <= owned_items:
                owned_fresh.add((spec.exp_id, cell.key))
        # Pre-fill the whole experiment, then resume leg 1/2: nothing to
        # measure, but the partition (sharded_out accounting) must match
        # the fresh assignment.
        store = RunStore(tmp_path / "prefilled")
        execute_campaign([spec], QUICK, store=store)
        campaign = execute_campaign(
            [spec],
            QUICK,
            store=store,
            resume=True,
            shard=(1, 2),
            shard_strategy="weight",
        )
        assert campaign.sharded_out == 0  # store hits satisfy everything
        assert campaign.executions  # finalized purely from the store
        # And a fresh (no-store) leg measures exactly the owned set.
        fresh = RunStore(tmp_path / "fresh")
        execute_campaign(
            [spec], QUICK, store=fresh, shard=(1, 2),
            shard_strategy="weight",
        )
        measured = {
            ("E9", payload["key"])
            for payload in map(
                read_record_payload, _store_files(fresh.root).values()
            )
        }
        assert measured == owned_fresh

    def test_cli_strategy_requires_shard(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "E9",
                    "--quick",
                    "--shard-strategy",
                    "weight",
                    "--store",
                    str(tmp_path / "s"),
                ]
            )
        assert "--shard-strategy only applies" in capsys.readouterr().err

    def test_cli_weight_leg_runs(self, tmp_path, capsys):
        rc = main(
            [
                "E9",
                "--quick",
                "--shard",
                "1/2",
                "--shard-strategy",
                "weight",
                "--store",
                str(tmp_path / "s1"),
            ]
        )
        assert rc == 0
        assert "[shard 1/2: measured" in capsys.readouterr().out
