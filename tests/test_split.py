"""Divisible cells: split/fold identity, resume from partial records.

The contract under test is an *identity*, not an approximation: for
every divisible cell, ``fold(run every subtask) == run the monolithic
measurement`` byte-for-byte, invariant to the part count K, the
scheduling order, the worker count, and the ``REPRO_NO_SPLIT=1`` kill
switch.  The tests exercise the contract at three levels — the pure
``run_subtask``/``fold_cell`` functions, a synthetic experiment whose K
is a parameter, and whole campaigns through the executor pool — plus
the mid-cell resume path (a killed run's ``.json.part`` records
complete without re-measuring landed parts) and the BFS early-stop that
makes E2's witness subtasks cheap.
"""

from __future__ import annotations

import json
import os
import random
from contextlib import contextmanager

import pytest

from repro.core.hierarchy import HierarchyRecognizer
from repro.core.hierarchy import replay_segment as replay_hierarchy_segment
from repro.core.known_n import KnownNHierarchyRecognizer
from repro.core.known_n import replay_segment as replay_known_n_segment
from repro.core.message_graph import build_message_graph, infinite_witness
from repro.errors import ProtocolError, ReproError
from repro.languages.hierarchy import STANDARD_GROWTHS, PeriodicLanguage
from repro.ring.unidirectional import run_unidirectional
from repro.experiments import RunProfile, get_spec
from repro.experiments.base import (
    Cell,
    Subtask,
    fold_cell,
    run_cell,
    run_subtask,
    splitting_enabled,
    subtask_seed,
)
from repro.experiments.e02_message_graph import CountingTransducer
from repro.runner import RunStore, execute_campaign

QUICK = RunProfile(preset="quick")
# The experiments that ship divisible cells (E2's witness, every E9/E10
# simulation cell).
DIVISIBLE_EXPS = ("E2", "E9", "E10")


@contextmanager
def _no_split():
    """Force the monolithic oracle path (REPRO_NO_SPLIT=1)."""
    prior = os.environ.get("REPRO_NO_SPLIT")
    os.environ["REPRO_NO_SPLIT"] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_NO_SPLIT", None)
        else:
            os.environ["REPRO_NO_SPLIT"] = prior


def _divisible_cells(exp_id: str, profile: RunProfile) -> list:
    return [c for c in get_spec(exp_id).cells(profile) if c.divisible]


# --------------------------------------------------------------------------
# The core identity: fold(subtasks) == monolithic, for every shipped cell.


class TestFoldIdentity:
    @pytest.mark.parametrize("exp_id", DIVISIBLE_EXPS)
    def test_fold_matches_monolithic_for_every_quick_cell(self, exp_id):
        cells = _divisible_cells(exp_id, QUICK)
        assert cells, f"{exp_id} plans no divisible cells under quick"
        for cell in cells:
            parts = {s.part: run_subtask(s) for s in cell.subtasks()}
            assert fold_cell(cell, parts) == run_cell(cell), (
                exp_id,
                cell.key,
                cell.mode,
            )

    def test_fold_is_order_invariant(self):
        (cell,) = _divisible_cells("E2", QUICK)
        subtasks = cell.subtasks()
        forward = {s.part: run_subtask(s) for s in subtasks}
        backward = {s.part: run_subtask(s) for s in reversed(subtasks)}
        assert fold_cell(cell, forward) == fold_cell(cell, backward)

    @pytest.mark.parametrize("exp_id", DIVISIBLE_EXPS)
    def test_config_hash_ignores_kill_switch(self, exp_id):
        """REPRO_NO_SPLIT must not fork cell identity: both paths share
        store records, so the hash has to agree."""
        with_split = {
            c.key: c.config_hash() for c in _divisible_cells(exp_id, QUICK)
        }
        with _no_split():
            without = {
                c.key: c.config_hash()
                for c in _divisible_cells(exp_id, QUICK)
            }
        assert with_split == without

    def test_subtask_weights_sum_to_cell_weight(self):
        for exp_id in DIVISIBLE_EXPS:
            for cell in _divisible_cells(exp_id, QUICK):
                total = sum(s.weight for s in cell.subtasks())
                assert total == pytest.approx(cell.weight), (exp_id, cell.key)


# --------------------------------------------------------------------------
# K-invariance on a synthetic divisible cell: the part count is a free
# parameter, and the folded record must not depend on it.  Per-trial
# randomness is drawn from subtask_seed over the *trial*, never the
# chunk, which is exactly the discipline the shipped cells follow.

_TRIALS = 24


def _trial_value(t: int) -> int:
    return random.Random(subtask_seed("EX", "synth", f"trial={t}")).randrange(
        1_000_000
    )


def _measure_slice(params: dict, rng: random.Random) -> dict:
    values = [_trial_value(t) for t in range(params["lo"], _TRIALS, params["step"])]
    return {"sum": sum(values), "count": len(values)}


def _measure_all(params: dict, rng: random.Random) -> dict:
    values = [_trial_value(t) for t in range(_TRIALS)]
    return {"total": sum(values), "trials": len(values)}


def _split_chunks(cell: Cell) -> "list[Subtask]":
    k = cell.params["chunks"]
    return [
        Subtask(
            exp_id=cell.exp_id,
            cell_key=cell.key,
            part=f"chunk={i}",
            fn=_measure_slice,
            params={"lo": i, "step": k},
            seed=subtask_seed(cell.exp_id, cell.key, f"chunk={i}"),
            weight=cell.weight / k,
        )
        for i in range(k)
    ]


def _fold_chunks(params: dict, parts: dict) -> dict:
    return {
        "total": sum(p["sum"] for p in parts.values()),
        "trials": sum(p["count"] for p in parts.values()),
    }


def _synthetic_cell(chunks: int) -> Cell:
    return Cell(
        exp_id="EX",
        key="synth",
        fn=_measure_all,
        params={"chunks": chunks},
        seed=subtask_seed("EX", "synth", "whole"),
        weight=float(_TRIALS),
        split=_split_chunks,
        fold=_fold_chunks,
    )


class TestKInvariance:
    @pytest.mark.parametrize("chunks", [1, 2, 4, 8])
    def test_folded_record_is_invariant_to_k(self, chunks):
        cell = _synthetic_cell(chunks)
        subtasks = cell.subtasks()
        assert len(subtasks) == chunks
        parts = {s.part: run_subtask(s) for s in subtasks}
        folded = fold_cell(cell, parts)
        assert folded == run_cell(_synthetic_cell(1))
        assert folded == run_cell(cell)
        assert folded["trials"] == _TRIALS

    def test_subtask_seed_depends_on_identity_only(self):
        a = subtask_seed("EX", "synth", "chunk=0")
        assert a == subtask_seed("EX", "synth", "chunk=0")
        assert a != subtask_seed("EX", "synth", "chunk=1")
        assert a != subtask_seed("EX", "other", "chunk=0")
        assert a != subtask_seed("E9", "synth", "chunk=0")


# --------------------------------------------------------------------------
# Decomposition validation: the executor trusts subtasks() to hand back
# a usable pool roster, so the failure modes must be loud.


def _bad_split_empty(cell: Cell) -> list:
    return []


def _bad_split_duplicate(cell: Cell) -> "list[Subtask]":
    sub = _split_chunks(cell)[0]
    return [sub, sub]


def _bad_split_foreign(cell: Cell) -> "list[Subtask]":
    from dataclasses import replace

    return [replace(_split_chunks(cell)[0], cell_key="elsewhere")]


class TestValidation:
    def test_monolithic_cell_has_no_subtasks(self):
        cell = Cell(
            exp_id="EX",
            key="mono",
            fn=_measure_all,
            params={},
            seed=1,
        )
        assert not cell.divisible
        with pytest.raises(ReproError):
            cell.subtasks()

    @pytest.mark.parametrize(
        "split",
        [_bad_split_empty, _bad_split_duplicate, _bad_split_foreign],
    )
    def test_bad_decompositions_are_rejected(self, split):
        from dataclasses import replace

        cell = replace(_synthetic_cell(2), split=split)
        with pytest.raises(ReproError):
            cell.subtasks()

    def test_kill_switch_toggles_splitting_enabled(self):
        assert splitting_enabled()
        with _no_split():
            assert not splitting_enabled()
        assert splitting_enabled()


# --------------------------------------------------------------------------
# Campaign byte-identity: divided and undivided runs produce the same
# tables and the same store records (file names included — shared
# config hash), at every worker count.


def _store_snapshot(root) -> dict:
    """Relative path -> payload with wall clock zeroed (the only
    legitimately nondeterministic field)."""
    out = {}
    for path in sorted(root.rglob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["seconds"] = 0.0
        out[path.relative_to(root).as_posix()] = payload
    return out


class TestCampaignByteIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_divided_equals_undivided(self, jobs, tmp_path):
        specs = [get_spec(e) for e in DIVISIBLE_EXPS]
        divided_store = RunStore(tmp_path / "divided")
        divided = execute_campaign(
            specs, QUICK, jobs=jobs, store=divided_store
        )
        assert divided.subtasks_run > 0
        assert divided.cells_folded > 0
        with _no_split():
            mono_store = RunStore(tmp_path / "mono")
            mono = execute_campaign(specs, QUICK, jobs=jobs, store=mono_store)
        assert mono.subtasks_run == 0
        assert mono.cells_folded == 0

        for exp_id in DIVISIBLE_EXPS:
            left = divided.executions[exp_id].result
            right = mono.executions[exp_id].result
            assert left.rows == right.rows, exp_id
            assert left.conclusions == right.conclusions, exp_id
            assert left.passed == right.passed, exp_id

        assert _store_snapshot(tmp_path / "divided") == _store_snapshot(
            tmp_path / "mono"
        )
        # No partial records outlive their fold.
        assert not list((tmp_path / "divided").rglob("*.json.part"))

    def test_jobs_do_not_change_divided_results(self, tmp_path):
        specs = [get_spec("E2"), get_spec("E9")]
        serial = execute_campaign(
            specs, QUICK, jobs=1, store=RunStore(tmp_path / "serial")
        )
        pooled = execute_campaign(
            specs, QUICK, jobs=4, store=RunStore(tmp_path / "pooled")
        )
        assert _store_snapshot(tmp_path / "serial") == _store_snapshot(
            tmp_path / "pooled"
        )
        assert serial.subtasks_run == pooled.subtasks_run


# --------------------------------------------------------------------------
# Mid-cell resume: a killed run's landed parts complete the cell without
# re-measuring them.


class TestPartialResume:
    def test_resume_completes_from_partial_records(self, tmp_path):
        spec = get_spec("E2")
        store = RunStore(tmp_path / "store")
        (cell,) = _divisible_cells("E2", QUICK)
        subtasks = cell.subtasks()
        assert len(subtasks) == 2
        # Simulate a campaign killed after the first subtask landed.
        first = subtasks[0]
        store.save_subtask(
            cell, QUICK, first.part, run_subtask(first), 0.25
        )
        assert store.subtask_path_for(cell, QUICK, first.part).exists()

        resumed = execute_campaign(
            [spec], QUICK, jobs=1, store=store, resume=True
        )
        # Only the missing part was measured; the fold still landed.
        assert resumed.subtasks_run == len(subtasks) - 1
        assert resumed.cells_folded >= 1
        assert resumed.executions["E2"].result.passed
        # The preloaded part's wall clock is carried, not re-measured.
        assert resumed.partial_fresh_seconds >= 0.0

        # Full record present, part files spent.
        assert store.path_for(cell, QUICK).exists()
        assert not store._subtask_paths(cell, QUICK)

        # The resumed record equals a from-scratch monolithic run.
        stored = store.load(cell, QUICK)
        with _no_split():
            oracle = run_cell(cell)
        assert stored.record == oracle

    def test_stale_part_records_are_ignored(self, tmp_path):
        """A part whose embedded hash mismatches the current cell is
        re-measured, not folded."""
        store = RunStore(tmp_path / "store")
        (cell,) = _divisible_cells("E2", QUICK)
        first = cell.subtasks()[0]
        path = store.save_subtask(
            cell, QUICK, first.part, run_subtask(first), 0.25
        )
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["config_hash"] = "0" * len(payload["config_hash"])
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        assert store.load_subtasks(cell, QUICK) == {}


# --------------------------------------------------------------------------
# The BFS early-stop that makes E2's witness parts cheap: the stopped
# graph is a prefix of the full exploration, so the witness word is
# identical to what the unbounded search selects.


class TestEarlyStopWitness:
    @pytest.mark.parametrize("length", [1, 5, 17, 24])
    def test_early_stop_word_matches_full_search(self, length):
        transducer = CountingTransducer()
        full = build_message_graph(transducer, max_vertices=100_000)
        candidates = [v for v, d in full.depth.items() if d >= length]
        vertex = min(candidates, key=lambda v: full.depth[v])
        expected = full.path_word_to(vertex)[:length]
        assert infinite_witness(transducer, length) == expected

    def test_early_stop_graph_is_prefix_of_full(self):
        transducer = CountingTransducer()
        stopped = build_message_graph(transducer, stop_at_depth=6)
        full = build_message_graph(transducer, max_vertices=100_000)
        assert stopped.truncated
        for vertex in stopped.vertices:
            assert vertex in full.vertices
            assert stopped.depth[vertex] == full.depth[vertex]
        for vertex, parent in stopped.parent.items():
            assert full.parent[vertex] == parent


# --------------------------------------------------------------------------
# The ring-segment replays behind E9's and E10's member subtasks: summing
# replay_segment over ANY partition of [0, n) must reproduce the
# simulator's per-pass bit totals and decision — for members, corrupted
# members, and arbitrary words alike (the replay models the algorithm,
# not the language).


def _partitions(n: int) -> "list[list[tuple[int, int]]]":
    """Segment bounds for K in {1, 2, 3, 5}, including uneven splits."""
    return [
        [((n * i) // k, (n * (i + 1)) // k) for i in range(k)]
        for k in (1, 2, 3, 5)
    ]


def _probe_words(language: PeriodicLanguage, n: int) -> "list[str]":
    """A member (when one exists), a corrupted member, a random word."""
    rng = random.Random(20260808)
    words = []
    member = language.sample_member(n, rng)
    if member is not None:
        words.append(member)
        spot = rng.randrange(n)
        other = next(c for c in language.alphabet if c != member[spot])
        words.append(member[:spot] + other + member[spot + 1 :])
    words.append("".join(rng.choice(language.alphabet) for _ in range(n)))
    return words


class TestSegmentReplay:
    @pytest.mark.parametrize("growth", STANDARD_GROWTHS, ids=lambda g: g.name)
    @pytest.mark.parametrize("n", [1, 2, 17, 24])
    def test_hierarchy_replay_matches_simulation(self, growth, n):
        language = PeriodicLanguage(growth)
        for word in _probe_words(language, n):
            trace = run_unidirectional(
                HierarchyRecognizer(language), word, trace="metrics"
            )
            for bounds in _partitions(n):
                segments = [
                    replay_hierarchy_segment(language, word, a, b)
                    for a, b in bounds
                ]
                count = sum(s["count_bits"] for s in segments)
                compare = sum(s["compare_bits"] for s in segments)
                fail = max(s["fail"] for s in segments)
                p_valid = segments[0]["p_valid"]
                assert count == trace.bits_of_pass(0)
                assert count + compare == trace.total_bits
                if p_valid:
                    assert compare == trace.bits_of_pass(1)
                assert (p_valid and fail == 0) == (trace.decision is True)

    @pytest.mark.parametrize("growth", STANDARD_GROWTHS, ids=lambda g: g.name)
    @pytest.mark.parametrize("n", [1, 2, 17, 24])
    def test_known_n_replay_matches_simulation(self, growth, n):
        language = PeriodicLanguage(growth)
        for word in _probe_words(language, n):
            trace = run_unidirectional(
                KnownNHierarchyRecognizer(language), word, trace="metrics"
            )
            for bounds in _partitions(n):
                segments = [
                    replay_known_n_segment(language, word, a, b)
                    for a, b in bounds
                ]
                bits = sum(s["bits"] for s in segments)
                fail = max(s["fail"] for s in segments)
                p_valid = segments[0]["p_valid"]
                assert bits == trace.total_bits
                assert (p_valid and fail == 0) == (trace.decision is True)

    def test_encoded_sizes_match_real_encodings(self):
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        codec = HierarchyRecognizer(language).codec
        known = KnownNHierarchyRecognizer(language)
        for fail in (0, 1):
            for window in [(), (0,), (1, 0), (0, 1, 1, 0, 1)]:
                for to_fill in (0, 1, 3, 9):
                    assert codec.encoded_size(
                        fail, to_fill, len(window)
                    ) == len(codec.encode(fail, to_fill, window))
                assert known.encoded_size(fail, len(window)) == len(
                    known.encode(fail, window)
                )

    def test_replay_rejects_out_of_range_segments(self):
        language = PeriodicLanguage(STANDARD_GROWTHS[0])
        with pytest.raises(ProtocolError):
            replay_hierarchy_segment(language, "abab", 3, 2)
        with pytest.raises(ProtocolError):
            replay_known_n_segment(language, "abab", 0, 5)
