"""Tests for the Turing machine substrate and the Summary-section bridge."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tm_bridge import TMRingAlgorithm, predicted_bridge_bits
from repro.languages import AnBn, CopyLanguage
from repro.languages.regular import parity_language
from repro.ring import run_bidirectional
from repro.ring.token import is_token_trace
from repro.tm import Move, TuringMachine, anbn_machine, copy_machine, parity_machine
from repro.tm.machine import TMError


class TestMachineSemantics:
    def test_rejects_empty_tape(self):
        with pytest.raises(TMError):
            parity_machine().run("")

    def test_rejects_foreign_symbol(self):
        with pytest.raises(TMError):
            parity_machine().run("az")

    def test_missing_transition_raises(self):
        machine = TuringMachine(
            name="partial",
            states=frozenset({"s", "acc", "rej"}),
            input_alphabet=("a",),
            tape_alphabet=("a",),
            transitions={("s", "a", True): ("s", "a", Move.R)},
            start_state="s",
            accept_state="acc",
            reject_state="rej",
        )
        with pytest.raises(TMError, match="no transition"):
            machine.run("aa")

    def test_step_cap(self):
        machine = TuringMachine(
            name="loop",
            states=frozenset({"s", "acc", "rej"}),
            input_alphabet=("a",),
            tape_alphabet=("a",),
            transitions={
                ("s", "a", True): ("s", "a", Move.R),
                ("s", "a", False): ("s", "a", Move.R),
            },
            start_state="s",
            accept_state="acc",
            reject_state="rej",
        )
        with pytest.raises(TMError, match="exceeded"):
            machine.run("aaa", max_steps=50)

    def test_construction_validation(self):
        with pytest.raises(TMError, match="missing from state set"):
            TuringMachine(
                name="bad",
                states=frozenset({"s"}),
                input_alphabet=("a",),
                tape_alphabet=("a",),
                transitions={},
                start_state="s",
                accept_state="acc",
                reject_state="rej",
            )

    def test_result_fields(self):
        result = parity_machine().run("ab")
        assert result.accepted is False  # one 'a'
        assert result.steps == 3  # two moves + halting transition
        assert result.final_tape == ("a", "b")
        assert result.head_travel == 2

    def test_work_states(self):
        machine = parity_machine()
        assert machine.work_states == frozenset({"init", "even", "odd"})


class TestConcreteMachines:
    def test_parity_exhaustive(self):
        machine, language = parity_machine(), parity_language()
        for length in range(1, 9):
            for letters in itertools.product("ab", repeat=length):
                word = "".join(letters)
                assert machine.accepts(word) == language.contains(word), word

    def test_parity_linear_time(self):
        machine = parity_machine()
        for n in [1, 5, 20, 100]:
            assert machine.run("a" * n).steps == n + 1

    def test_copy_exhaustive(self):
        machine, language = copy_machine(), CopyLanguage()
        for length in range(1, 7):
            for letters in itertools.product("abc", repeat=length):
                word = "".join(letters)
                assert machine.accepts(word) == language.contains(word), word

    def test_copy_quadratic_time(self):
        machine = copy_machine()
        steps = {}
        for k in [4, 8, 16]:
            word = "a" * k + "c" + "a" * k
            steps[k] = machine.run(word).steps
        # Doubling the input roughly quadruples the time.
        assert 3.0 < steps[8] / steps[4] < 5.0
        assert 3.0 < steps[16] / steps[8] < 5.0

    def test_anbn_exhaustive(self):
        machine, language = anbn_machine(), AnBn()
        for length in range(1, 11):
            for letters in itertools.product("ab", repeat=length):
                word = "".join(letters)
                assert machine.accepts(word) == language.contains(word), word

    def test_anbn_rejects_dyck_words(self):
        """The order-checking sweep rejects balanced-but-interleaved words."""
        machine = anbn_machine()
        for word in ["abab", "aabbab", "abaabb"]:
            assert not machine.accepts(word), word

    @given(st.text(alphabet="abc", min_size=1, max_size=14))
    @settings(max_examples=80, deadline=None)
    def test_copy_property(self, word):
        assert copy_machine().accepts(word) == CopyLanguage().contains(word)


class TestBridge:
    CASES = [
        (parity_machine, parity_language),
        (copy_machine, CopyLanguage),
        (anbn_machine, AnBn),
    ]

    @pytest.mark.parametrize("build_machine,build_language", CASES,
                             ids=["parity", "copy", "anbn"])
    def test_bridge_equals_machine_equals_language(
        self, build_machine, build_language, rng
    ):
        machine, language = build_machine(), build_language()
        algorithm = TMRingAlgorithm(machine)
        for length in range(1, 8):
            for _ in range(10):
                word = "".join(
                    rng.choice(machine.input_alphabet) for _ in range(length)
                )
                result = machine.run(word)
                trace = run_bidirectional(algorithm, word)
                assert trace.decision == result.accepted == language.contains(
                    word
                ), word
                assert is_token_trace(trace)

    def test_exact_bit_accounting(self):
        machine = copy_machine()
        algorithm = TMRingAlgorithm(machine)
        for word in ["abcab", "aabcaab", "abcba", "bcb", "c"]:
            result = machine.run(word)
            trace = run_bidirectional(algorithm, word)
            halting_cell = result.head_positions[-1]
            verdict_hops = (0 - halting_cell) % len(word) if halting_cell else 0
            assert trace.total_bits == predicted_bridge_bits(
                machine, result.steps, verdict_hops
            ), word

    def test_summary_bound(self, rng):
        """The paper's bound: BIT <= t * (log|Q| + 1) + O(n)."""
        import math

        for build_machine in (parity_machine, copy_machine, anbn_machine):
            machine = build_machine()
            algorithm = TMRingAlgorithm(machine)
            width = math.ceil(math.log2(len(machine.work_states)))
            for length in [5, 9, 15]:
                word = "".join(
                    rng.choice(machine.input_alphabet) for _ in range(length)
                )
                result = machine.run(word)
                trace = run_bidirectional(algorithm, word)
                bound = result.steps * (width + 1) + 2 * length + 2
                assert trace.total_bits <= bound, (machine.name, word)

    def test_message_direction_follows_head(self):
        """L-moves become CCW messages, R-moves CW messages."""
        from repro.ring.messages import Direction

        machine = copy_machine()
        algorithm = TMRingAlgorithm(machine)
        word = "abcab"
        result = machine.run(word)
        trace = run_bidirectional(algorithm, word)
        head_messages = [e for e in trace.events if e.bits[0] == 0]
        positions = result.head_positions
        n = len(word)
        for event, (before, after) in zip(
            head_messages, zip(positions, positions[1:])
        ):
            expected = (
                Direction.CW if (after - before) % n == 1 else Direction.CCW
            )
            assert event.direction is expected
