"""The incremental enabled-set token scheduler vs the seed's O(m^2) scan.

`serialize_to_token` replays deliveries in the order chosen by
`_delivery_order_indexed` (per-sender heaps, incremental dependency
counts).  Its contract is *bit-for-bit* equality with the seed's
full-rescan scheduler `_delivery_order_scan` on every causally valid
trace — these tests pin that equivalence on sequential executions, on
genuinely chaotic ones under randomized schedulers, and property-style
across random (word, burst, seed) combinations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import Bits, encode_fixed
from repro.core.comparison import CopyRecognizer
from repro.core.counters import BlockCounterRecognizer
from repro.core.regular_bidirectional import BidirectionalDFARecognizer
from repro.languages.regular import parity_language
from repro.ring import run_bidirectional, run_unidirectional
from repro.ring.line import ring_to_line
from repro.ring.schedulers import LifoScheduler, RandomScheduler
from repro.ring.messages import Direction, Send
from repro.ring.processor import Processor, RingAlgorithm
from repro.ring.token import (
    _delivery_order_indexed,
    _delivery_order_scan,
    serialize_to_token,
)


class _BurstLeader(Processor):
    """Floods ``k`` distinct messages down both ports, then absorbs them."""

    def __init__(self, letter: str, k: int) -> None:
        super().__init__(letter, is_leader=True)
        self.k = k
        self._absorbed = 0

    def on_start(self):
        sends = []
        for i in range(self.k):
            payload = encode_fixed(i, 4)
            sends.append(Send.cw(Bits("0") + payload))
            sends.append(Send.ccw(Bits("1") + payload))
        return sends

    def on_receive(self, message: Bits, arrived_from: Direction):
        self._absorbed += 1
        if self._absorbed == 2 * self.k:
            self.decide(True)
        return ()


class _BurstFollower(Processor):
    """Forwards every message onward in its travel direction."""

    def on_receive(self, message: Bits, arrived_from: Direction):
        return [Send(arrived_from.opposite(), message)]


class BurstFlood(RingAlgorithm):
    """2k concurrent waves circling the ring — a genuinely chaotic load."""

    name = "burst-flood"

    def __init__(self, k: int) -> None:
        super().__init__("ab")
        self.k = k

    def create_processor(self, letter: str, is_leader: bool) -> Processor:
        if is_leader:
            return _BurstLeader(letter, self.k)
        return _BurstFollower(letter, is_leader=False)


def _word(n: int) -> str:
    return ("ab" * n)[:n]


class TestOrderEquivalence:
    def test_sequential_unidirectional(self):
        for word in ("ab" * 3 + "c" + "ab" * 3, "a" * 4 + "c" + "a" * 4):
            trace = run_unidirectional(CopyRecognizer(), word)
            assert _delivery_order_indexed(trace) == _delivery_order_scan(trace)

    def test_sequential_counters(self):
        trace = run_unidirectional(BlockCounterRecognizer("012"), "001122" * 2)
        assert _delivery_order_indexed(trace) == _delivery_order_scan(trace)

    def test_bidirectional_dfa_random_schedule(self):
        parity = parity_language()
        for seed in range(5):
            trace = run_bidirectional(
                BidirectionalDFARecognizer(parity.dfa),
                _word(9),
                scheduler=RandomScheduler(seed=seed),
            )
            assert _delivery_order_indexed(trace) == _delivery_order_scan(trace)

    def test_chaotic_flood_lifo(self):
        trace = run_bidirectional(
            BurstFlood(3), _word(8), scheduler=LifoScheduler()
        )
        assert trace.max_in_flight > 1
        assert _delivery_order_indexed(trace) == _delivery_order_scan(trace)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_random_serialized_executions(self, n, k, seed):
        """The pinning property: identical delivery order on random chaotic
        executions, hence identical token events bit for bit."""
        trace = run_bidirectional(
            BurstFlood(k), _word(n), scheduler=RandomScheduler(seed=seed)
        )
        order_indexed = _delivery_order_indexed(trace)
        order_scan = _delivery_order_scan(trace)
        assert order_indexed == order_scan
        assert sorted(order_indexed) == list(range(len(trace.events)))

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_token_stats_match_full(self, n, seed):
        trace = run_bidirectional(
            BurstFlood(2), _word(n), scheduler=RandomScheduler(seed=seed)
        )
        full = serialize_to_token(trace)
        stats = serialize_to_token(trace, trace_policy="metrics")
        assert stats.total_bits == full.total_bits
        assert stats.move_bits == full.move_bits
        assert stats.carry_bits == full.carry_bits
        assert stats.carry_count == len(full.payload_events())
        assert stats.overhead_ratio == full.overhead_ratio


class TestLineTransformMetrics:
    def test_stats_match_full_result(self):
        trace = run_unidirectional(BlockCounterRecognizer("012"), "000111222")
        full = ring_to_line(trace)
        stats = ring_to_line(trace, trace_policy="metrics")
        assert full.stats() == stats
        assert stats.ratio == full.ratio
        assert stats.rerouted_messages() == full.rerouted_messages()
        assert stats.event_count == len(full.events)

    def test_stats_match_with_forced_cut(self):
        trace = run_unidirectional(CopyRecognizer(), "ab" * 2 + "c" + "ab" * 2)
        for cut in range(trace.ring_size):
            full = ring_to_line(trace, cut=cut)
            stats = ring_to_line(trace, cut=cut, trace_policy="metrics")
            assert full.stats() == stats

    def test_chaotic_trace_stats(self):
        trace = run_bidirectional(
            BurstFlood(2), _word(7), scheduler=RandomScheduler(seed=11)
        )
        assert ring_to_line(trace).stats() == ring_to_line(
            trace, trace_policy="metrics"
        )
