"""Cross-checks: ``trace="metrics"`` counters equal full-trace accounting.

Every simulator's :class:`~repro.ring.trace.TraceStats` is required to be
bit-for-bit identical to the values derived from the
:class:`~repro.ring.trace.ExecutionTrace` of the same execution — this is
the contract that lets experiments run their sweeps without materializing
events.  The matrix covers all four execution substrates (unidirectional,
bidirectional under several schedulers, line, token serialization) over
randomized algorithms and words.
"""

from __future__ import annotations

import random

import pytest

from conftest import random_dfa
from repro.core.comparison import (
    CollectAllRecognizer,
    CopyRecognizer,
    MarkedPalindromeRecognizer,
)
from repro.core.counters import BlockCounterRecognizer
from repro.core.regular_bidirectional import BidirectionalDFARecognizer
from repro.core.regular_onepass import DFARecognizer
from repro.errors import RingError
from repro.languages.nonregular import AnBnCn, CopyLanguage, MarkedPalindrome
from repro.ring import (
    BidirectionalRing,
    TraceStats,
    UnidirectionalRing,
    run_bidirectional,
    run_unidirectional,
)
from repro.ring.schedulers import FifoScheduler, LifoScheduler, RandomScheduler
from repro.ring.token import TokenStats, serialize_to_token


def assert_stats_match(full_trace, stats: TraceStats) -> None:
    """Field-for-field agreement between a full trace and streamed stats."""
    assert stats.word == full_trace.word
    assert stats.leader == full_trace.leader
    assert stats.ring_size == full_trace.ring_size
    assert stats.total_bits == full_trace.total_bits
    assert stats.message_count == full_trace.message_count
    assert stats.bits_per_link() == full_trace.bits_per_link()
    assert stats.min_bits_link() == full_trace.min_bits_link()
    assert stats.messages_per_processor() == full_trace.messages_per_processor()
    assert stats.pass_count() == full_trace.pass_count()
    for index in range(full_trace.pass_count()):
        assert stats.bits_of_pass(index) == full_trace.bits_of_pass(index)
    assert stats.max_in_flight == full_trace.max_in_flight
    assert stats.decision == full_trace.decision
    # And the derived-stats helper agrees with the streamed version.
    derived = full_trace.stats()
    assert derived.link_bits == stats.link_bits
    assert derived.pass_bits == stats.pass_bits
    assert derived.sent_counts == stats.sent_counts


def unidirectional_cases():
    rng = random.Random(0x7ACE)
    copy_lang, pal_lang, abc_lang = CopyLanguage(), MarkedPalindrome(), AnBnCn()
    cases = []
    for n in (1, 2, 3, 5, 9, 17, 33):
        word = copy_lang.sample_member(2 * n + 1, rng)
        cases.append((CopyRecognizer(), word))
        cases.append((MarkedPalindromeRecognizer(), pal_lang.sample_member(2 * n + 1, rng)))
        cases.append((CollectAllRecognizer(copy_lang), word))
    for n in (3, 6, 12, 24):
        cases.append((BlockCounterRecognizer("012"), abc_lang.sample_member(n, rng)))
    for size in (2, 3, 5, 8):
        dfa = random_dfa(rng, size)
        word = "".join(rng.choice("ab") for _ in range(rng.randrange(1, 40)))
        cases.append((DFARecognizer(dfa), word))
    return cases


def bidirectional_cases():
    rng = random.Random(0xB1D1)
    cases = []
    for size in (2, 3, 5):
        dfa = random_dfa(rng, size)
        for scheduler_factory in (
            FifoScheduler,
            LifoScheduler,
            lambda: RandomScheduler(seed=size),
        ):
            word = "".join(rng.choice("ab") for _ in range(rng.randrange(2, 24)))
            cases.append((BidirectionalDFARecognizer(dfa), word, scheduler_factory))
    return cases


class TestUnidirectionalCrossCheck:
    @pytest.mark.parametrize(
        "algorithm,word",
        unidirectional_cases(),
        ids=lambda value: getattr(value, "name", None) or f"w{len(value)}",
    )
    def test_metrics_equals_full(self, algorithm, word):
        full_trace = run_unidirectional(algorithm, word)
        stats = run_unidirectional(algorithm, word, trace="metrics")
        assert isinstance(stats, TraceStats)
        assert_stats_match(full_trace, stats)

    def test_ring_class_accepts_policy(self):
        algorithm = CopyRecognizer()
        word = CopyLanguage().sample_member(9, random.Random(1))
        full_trace = UnidirectionalRing(algorithm, word).run()
        stats = UnidirectionalRing(algorithm, word).run(trace="metrics")
        assert_stats_match(full_trace, stats)

    def test_unknown_policy_rejected(self):
        with pytest.raises(RingError, match="trace policy"):
            run_unidirectional(CopyRecognizer(), "aca", trace="events")


class TestBidirectionalCrossCheck:
    @pytest.mark.parametrize(
        "algorithm,word,scheduler_factory",
        bidirectional_cases(),
        ids=lambda value: getattr(value, "name", None),
    )
    def test_metrics_equals_full(self, algorithm, word, scheduler_factory):
        full_trace = run_bidirectional(algorithm, word, scheduler=scheduler_factory())
        stats = run_bidirectional(
            algorithm, word, scheduler=scheduler_factory(), trace="metrics"
        )
        assert isinstance(stats, TraceStats)
        assert_stats_match(full_trace, stats)

    def test_ring_class_accepts_policy(self):
        dfa = random_dfa(random.Random(7), 3)
        algorithm = BidirectionalDFARecognizer(dfa)
        full_trace = BidirectionalRing(algorithm, "abab").run()
        stats = BidirectionalRing(algorithm, "abab").run(trace="metrics")
        assert_stats_match(full_trace, stats)


def _echo_line(word: str):
    """A line network whose token bounces end to end once (deterministic)."""
    from repro.bits import Bits
    from repro.ring import Processor, RingAlgorithm, Send
    from repro.ring.line import LineNetwork

    class LineLeader(Processor):
        def on_start(self):
            return [Send.cw(Bits("101"))]

        def on_receive(self, message, arrived_from):
            self.decide(True)
            return ()

    class LineEcho(Processor):
        def __init__(self, letter, is_leader, is_last):
            super().__init__(letter, is_leader)
            self._is_last = is_last

        def on_receive(self, message, arrived_from):
            if self._is_last:
                return [Send.ccw(message + Bits("1"))]
            return [Send(arrived_from.opposite(), message)]

    class LineAlgo(RingAlgorithm):
        name = "line-echo"

        def __init__(self):
            super().__init__("ab")

        def create_processor(self, letter, is_leader):
            raise AssertionError("positioned only")

        def create_processor_positioned(self, letter, is_leader, index, size):
            if is_leader:
                return LineLeader(letter, is_leader=True)
            return LineEcho(letter, is_leader, is_last=index == size - 1)

    return LineNetwork(LineAlgo(), word)


class TestLineCrossCheck:
    @pytest.mark.parametrize("word", ["ab", "abab", "abababab"])
    def test_metrics_equals_full(self, word):
        full_trace = _echo_line(word).run()
        stats = _echo_line(word).run(trace="metrics")
        assert_stats_match(full_trace, stats)


class TestTokenCrossCheck:
    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_token_stats_equal_token_trace(self, n):
        rng = random.Random(n)
        word = CopyLanguage().sample_member(2 * (n // 2) + 1, rng)
        trace = run_unidirectional(CopyRecognizer(), word)
        token_full = serialize_to_token(trace)
        token_stats = serialize_to_token(trace, trace_policy="metrics")
        assert isinstance(token_stats, TokenStats)
        assert token_stats.total_bits == token_full.total_bits
        assert token_stats.move_bits == token_full.move_bits
        assert token_stats.carry_bits == token_full.carry_bits
        assert token_stats.carry_count == len(token_full.payload_events())
        assert token_stats.overhead_ratio == token_full.overhead_ratio
